//! Sublinear lexical candidate index for entity & property mapping.
//!
//! The §2.2 mapping stage scores question words against every entity label
//! and every ontology property with a full LCS dynamic program. This module
//! replaces the brute-force scan with a pre-built index that retrieves a
//! *provable superset* of the entries that can reach the similarity
//! threshold; the caller then runs the exact scorer only on the survivors,
//! so the final candidate lists are bit-identical to the brute-force scan.
//!
//! ## Structure
//!
//! Every indexed string ("scoring unit") is stored lowercased with
//! precomputed artifacts: character length, a character-frequency multiset
//! and a score scale (1.0 for whole names and entity labels, 0.9 for label
//! words, matching `property_name_score`). Units feed three retrieval
//! structures:
//!
//! - a character **bigram inverted index** (unit text → its adjacent
//!   character pairs → posting lists);
//! - an **exact-word map** for the 0.95 near-exact rule (camel-case
//!   constituents of property names and label words);
//! - a per-scale **short-unit bucket** (units sorted by length) for the
//!   region where the bigram guarantee below does not apply.
//!
//! ## Why retrieval is lossless
//!
//! LCS is a *subsequence* measure, so n-gram retrieval needs a real
//! argument (two strings can share a long subsequence but no trigram).
//! Count adjacency breaks: a common subsequence of length `L` in strings of
//! length `m` and `ℓ` has `L−1` adjacent pairs, and at most
//! `(m−L) + (ℓ−L)` of them are interrupted by non-subsequence characters.
//! If `3L ≥ m+ℓ+2` some pair survives contiguously in both strings — a
//! shared bigram. With `score = L/max(m,ℓ) ≥ t` this holds whenever
//! `max(m,ℓ) ≥ 2/(3t−2)` (valid for `t > 2/3`; the same derivation for
//! trigrams needs `t > 4/5`, above our 0.7 property threshold, which is why
//! this is a bigram index). Pairs below that length bound live in the
//! short-unit bucket, which is scanned only when the query itself is short
//! (if the query is long, `max(m,ℓ)` is large and the guarantee applies).
//! When the effective threshold is ≤ 2/3 (ablation sweeps), retrieval
//! degrades to a bounded full scan of the unit list — still pruned, still
//! exact.
//!
//! ## Why pruning is lossless
//!
//! Survivors of retrieval are kept only if a cheap upper bound on the LCS
//! score clears the threshold: `lcs ≤ min(m,ℓ)` (length-band bound) and
//! `lcs ≤ |multiset intersection|` (character-count bound). Both bounds are
//! integers ≥ the true LCS length, and `x ↦ x/max` and `x ↦ x·scale` are
//! monotone under IEEE rounding, so the computed bound is ≥ the exactly
//! computed score — an entry is pruned only when its true score cannot
//! reach the threshold. Exact-word hits skip the bounds entirely.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use relpat_obs::fx::{FxHashMap, FxHashSet};
use relpat_rdf::Iri;

use crate::ontology::Ontology;

/// Splits a camelCase property local name into lower-cased words
/// (`populationTotal` → `["population", "total"]`). Canonical home of the
/// splitter used both here (index build) and by the core scorer.
pub fn split_camel_case(name: &str) -> Vec<String> {
    let mut words = Vec::new();
    let mut cur = String::new();
    for c in name.chars() {
        if c.is_uppercase() && !cur.is_empty() {
            words.push(std::mem::take(&mut cur));
        }
        cur.extend(c.to_lowercase());
    }
    if !cur.is_empty() {
        words.push(cur);
    }
    words
}

/// Character-frequency multiset of a (lowercased) string: ASCII counts in a
/// dense array, anything else in a sorted spill vector.
#[derive(Debug, Clone)]
struct CharBag {
    ascii: [u16; 128],
    other: Vec<(char, u16)>,
}

impl CharBag {
    fn of(s: &str) -> Self {
        let mut ascii = [0u16; 128];
        let mut other: Vec<(char, u16)> = Vec::new();
        for c in s.chars() {
            if (c as u32) < 128 {
                let slot = &mut ascii[c as usize];
                *slot = slot.saturating_add(1);
            } else {
                match other.binary_search_by_key(&c, |&(x, _)| x) {
                    Ok(i) => other[i].1 = other[i].1.saturating_add(1),
                    Err(i) => other.insert(i, (c, 1)),
                }
            }
        }
        CharBag { ascii, other }
    }

    /// Size of the multiset intersection — an upper bound on the LCS length
    /// of the two strings.
    fn intersection(&self, rhs: &CharBag) -> usize {
        let mut n: usize = 0;
        for i in 0..128 {
            n += self.ascii[i].min(rhs.ascii[i]) as usize;
        }
        if !self.other.is_empty() && !rhs.other.is_empty() {
            let (mut i, mut j) = (0, 0);
            while i < self.other.len() && j < rhs.other.len() {
                match self.other[i].0.cmp(&rhs.other[j].0) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        n += self.other[i].1.min(rhs.other[j].1) as usize;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        n
    }
}

/// One indexed scoring unit: a lowercased string that the exact scorer
/// compares against via LCS, scaled by `scale` in the final score.
#[derive(Debug)]
struct Unit {
    entry: u32,
    scale: f64,
    len: u32,
    bag: CharBag,
}

/// Units of one scale, ordered by character length (short-bucket scans walk
/// a prefix of this list).
#[derive(Debug)]
struct ScaleGroup {
    scale: f64,
    by_len: Vec<u32>,
}

/// Build-time description of one entry.
struct EntrySpec {
    /// `(lowercased text, scale)` LCS scoring units.
    units: Vec<(String, f64)>,
    /// Exact-match words for the 0.95 rule (camel constituents + label words).
    words: Vec<String>,
}

fn bigram_key(a: char, b: char) -> u64 {
    ((a as u64) << 32) | b as u64
}

/// Inverted index over one family of entries (entity labels, object
/// properties or data properties). Entry ids are positions in the caller's
/// backing list, so survivors come back in the caller's iteration order.
#[derive(Debug)]
struct SimIndex {
    units: Vec<Unit>,
    entry_count: usize,
    bigrams: FxHashMap<u64, Vec<u32>>,
    groups: Vec<ScaleGroup>,
    words: FxHashMap<String, Vec<u32>>,
}

impl SimIndex {
    fn build(specs: Vec<EntrySpec>) -> Self {
        let entry_count = specs.len();
        let mut units: Vec<Unit> = Vec::new();
        let mut bigrams: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        let mut words: FxHashMap<String, Vec<u32>> = FxHashMap::default();
        for (entry, spec) in specs.into_iter().enumerate() {
            for (text, scale) in spec.units {
                let id = units.len() as u32;
                let mut keys: Vec<u64> = text
                    .chars()
                    .zip(text.chars().skip(1))
                    .map(|(a, b)| bigram_key(a, b))
                    .collect();
                keys.sort_unstable();
                keys.dedup();
                for key in keys {
                    bigrams.entry(key).or_default().push(id);
                }
                units.push(Unit {
                    entry: entry as u32,
                    scale,
                    len: text.chars().count() as u32,
                    bag: CharBag::of(&text),
                });
            }
            for word in spec.words {
                let posting = words.entry(word).or_default();
                if posting.last() != Some(&(entry as u32)) {
                    posting.push(entry as u32);
                }
            }
        }
        let mut scales: Vec<f64> = units.iter().map(|u| u.scale).collect();
        scales.sort_by(f64::total_cmp);
        scales.dedup();
        let groups = scales
            .into_iter()
            .map(|scale| {
                let mut by_len: Vec<u32> = (0..units.len() as u32)
                    .filter(|&u| units[u as usize].scale == scale)
                    .collect();
                by_len.sort_by_key(|&u| units[u as usize].len);
                ScaleGroup { scale, by_len }
            })
            .collect();
        SimIndex { units, entry_count, bigrams, groups, words }
    }

    /// Entry ids (ascending) whose true score against `query` *may* reach
    /// `threshold` — a provable superset, see the module docs. `query` must
    /// already be lowercased (entity queries: `normalize_label`ed).
    fn candidates(&self, query: &str, threshold: f64, stats: &LookupCells) -> Vec<u32> {
        let qlen = query.chars().count();
        let qbag = CharBag::of(query);
        let mut survivor = vec![false; self.entry_count];

        // Exact-word fast path: 0.95-rule hits survive unconditionally (the
        // exact scorer re-derives the actual score).
        if let Some(posting) = self.words.get(query) {
            for &e in posting {
                survivor[e as usize] = true;
            }
        }

        let mut seen = vec![false; self.units.len()];
        let mut examine: Vec<u32> = Vec::new();
        let mut probe_bigrams = false;
        let mut full_scan_groups = 0u64;
        for group in &self.groups {
            if group.scale < threshold {
                continue; // scale · lcs_score ≤ scale < threshold: unreachable
            }
            let t_eff = threshold / group.scale;
            if t_eff <= 2.0 / 3.0 {
                // Below the bigram-recall guarantee: bounded full scan.
                full_scan_groups += 1;
                for &u in &group.by_len {
                    if !seen[u as usize] {
                        seen[u as usize] = true;
                        examine.push(u);
                    }
                }
            } else {
                probe_bigrams = true;
                // Guarantee bound (+1 absorbs float rounding of the ceil).
                let bound = (2.0 / (3.0 * t_eff - 2.0)).ceil() as usize + 1;
                if qlen < bound {
                    for &u in &group.by_len {
                        if self.units[u as usize].len as usize >= bound {
                            break;
                        }
                        if !seen[u as usize] {
                            seen[u as usize] = true;
                            examine.push(u);
                        }
                    }
                }
            }
        }
        if full_scan_groups > 0 {
            // One event per lookup (not per unit) — this is the hot path.
            relpat_obs::jevent!(
                relpat_obs::Level::Debug, "kb.lexical.full_scan",
                "query" => query,
                "groups" => full_scan_groups,
                "examined" => examine.len(),
            );
        }
        if probe_bigrams && qlen >= 2 {
            let mut probed_keys: FxHashSet<u64> = FxHashSet::default();
            for (a, b) in query.chars().zip(query.chars().skip(1)) {
                let key = bigram_key(a, b);
                if !probed_keys.insert(key) {
                    continue;
                }
                if let Some(posting) = self.bigrams.get(&key) {
                    for &u in posting {
                        if !seen[u as usize] {
                            seen[u as usize] = true;
                            examine.push(u);
                        }
                    }
                }
            }
        }

        let mut pruned: u64 = 0;
        for &u in &examine {
            let unit = &self.units[u as usize];
            if survivor[unit.entry as usize] {
                continue;
            }
            if unit.scale < threshold {
                pruned += 1;
                continue;
            }
            let (len, max) = (unit.len as usize, (unit.len as usize).max(qlen));
            if max == 0 {
                // Both empty: true score is 0, matching `lcs_score`.
                if 0.0 < threshold {
                    pruned += 1;
                    continue;
                }
                survivor[unit.entry as usize] = true;
                continue;
            }
            let band = unit.scale * (len.min(qlen) as f64 / max as f64);
            if band < threshold {
                pruned += 1;
                continue;
            }
            let ub = unit.scale * (qbag.intersection(&unit.bag) as f64 / max as f64);
            if ub < threshold {
                pruned += 1;
                continue;
            }
            survivor[unit.entry as usize] = true;
        }

        let out: Vec<u32> = (0..self.entry_count as u32)
            .filter(|&e| survivor[e as usize])
            .collect();
        stats.record(examine.len() as u64, pruned, out.len() as u64);
        out
    }

    fn posting_len(&self) -> usize {
        self.bigrams.values().map(Vec::len).sum()
    }
}

/// Cumulative lookup totals (snapshot of [`LexicalIndex::lookup_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexLookupStats {
    /// Scoring units examined via postings, buckets or fallback scans.
    pub probed: u64,
    /// Units rejected by the length-band / multiset upper bounds.
    pub pruned: u64,
    /// Entries returned to the caller for exact scoring.
    pub scored: u64,
}

impl IndexLookupStats {
    pub fn delta_since(&self, before: &IndexLookupStats) -> IndexLookupStats {
        IndexLookupStats {
            probed: self.probed - before.probed,
            pruned: self.pruned - before.pruned,
            scored: self.scored - before.scored,
        }
    }

    /// Fraction of probed units the bounds rejected without running the DP.
    pub fn prune_rate(&self) -> f64 {
        if self.probed == 0 {
            0.0
        } else {
            self.pruned as f64 / self.probed as f64
        }
    }
}

#[derive(Debug, Default)]
struct LookupCells {
    probed: AtomicU64,
    pruned: AtomicU64,
    scored: AtomicU64,
}

impl LookupCells {
    fn record(&self, probed: u64, pruned: u64, scored: u64) {
        self.probed.fetch_add(probed, Relaxed);
        self.pruned.fetch_add(pruned, Relaxed);
        self.scored.fetch_add(scored, Relaxed);
        relpat_obs::counter!("qa.map.index.probed", probed);
        relpat_obs::counter!("qa.map.index.pruned", pruned);
        relpat_obs::counter!("qa.map.index.scored", scored);
    }

    fn snapshot(&self) -> IndexLookupStats {
        IndexLookupStats {
            probed: self.probed.load(Relaxed),
            pruned: self.pruned.load(Relaxed),
            scored: self.scored.load(Relaxed),
        }
    }
}

/// Build-time shape of the index (for profiles and benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LexStats {
    pub entity_entries: usize,
    pub property_entries: usize,
    pub units: usize,
    pub bigram_postings: usize,
    pub exact_words: usize,
}

/// The per-`KnowledgeBase` lexical candidate index: entity labels plus
/// object/data property names and labels. Built once in
/// [`KnowledgeBase::from_graph`](crate::KnowledgeBase::from_graph).
#[derive(Debug)]
pub struct LexicalIndex {
    /// `(normalized label, entities)` sorted by label — the index's stable
    /// view of the entity label table.
    entity_labels: Vec<(String, Vec<Iri>)>,
    entities: SimIndex,
    object_props: SimIndex,
    data_props: SimIndex,
    lookups: LookupCells,
}

impl LexicalIndex {
    pub(crate) fn build(
        label_index: &FxHashMap<String, Vec<Iri>>,
        ontology: &Ontology,
    ) -> Self {
        let mut entity_labels: Vec<(String, Vec<Iri>)> =
            label_index.iter().map(|(l, v)| (l.clone(), v.clone())).collect();
        entity_labels.sort_by(|(a, _), (b, _)| a.cmp(b));
        let entity_specs = entity_labels
            .iter()
            .map(|(label, _)| EntrySpec {
                units: vec![(label.clone(), 1.0)],
                words: Vec::new(),
            })
            .collect();
        let property_specs = |names: &mut dyn Iterator<Item = (&str, &str)>| -> Vec<EntrySpec> {
            names
                .map(|(name, label)| {
                    let mut units = vec![(name.to_lowercase(), 1.0)];
                    let mut words = split_camel_case(name);
                    for w in label.to_lowercase().split_whitespace() {
                        units.push((w.to_string(), 0.9));
                        words.push(w.to_string());
                    }
                    words.sort_unstable();
                    words.dedup();
                    EntrySpec { units, words }
                })
                .collect()
        };
        let object_props = SimIndex::build(property_specs(
            &mut ontology.object_properties.iter().map(|p| (p.name, p.label)),
        ));
        let data_props = SimIndex::build(property_specs(
            &mut ontology.data_properties.iter().map(|p| (p.name, p.label)),
        ));
        LexicalIndex {
            entities: SimIndex::build(entity_specs),
            entity_labels,
            object_props,
            data_props,
            lookups: LookupCells::default(),
        }
    }

    /// Entity-label entries that may score ≥ `threshold` against the
    /// (already `normalize_label`ed) query. A superset of the true matches;
    /// callers re-score with the exact LCS and filter.
    pub fn entity_candidates(
        &self,
        norm_query: &str,
        threshold: f64,
    ) -> impl Iterator<Item = (&str, &[Iri])> {
        self.entities
            .candidates(norm_query, threshold, &self.lookups)
            .into_iter()
            .map(|e| {
                let (label, iris) = &self.entity_labels[e as usize];
                (label.as_str(), iris.as_slice())
            })
    }

    /// Indices into `ontology.object_properties` (ascending) that may score
    /// ≥ `threshold` against *any* of the lowercased query words.
    pub fn object_property_candidates(&self, words: &[&str], threshold: f64) -> Vec<usize> {
        self.multi_word(&self.object_props, words, threshold)
    }

    /// Indices into `ontology.data_properties` (ascending) that may score
    /// ≥ `threshold` against *any* of the lowercased query words.
    pub fn data_property_candidates(&self, words: &[&str], threshold: f64) -> Vec<usize> {
        self.multi_word(&self.data_props, words, threshold)
    }

    fn multi_word(&self, index: &SimIndex, words: &[&str], threshold: f64) -> Vec<usize> {
        let mut out: Vec<u32> = Vec::new();
        for (i, word) in words.iter().enumerate() {
            if words[..i].contains(word) {
                continue; // identical word (text == lemma): same survivors
            }
            out.extend(index.candidates(word, threshold, &self.lookups));
        }
        out.sort_unstable();
        out.dedup();
        out.into_iter().map(|e| e as usize).collect()
    }

    /// Cumulative probe/prune/score totals across all lookups on this index
    /// (per-KB, so concurrent tests in one process do not bleed).
    pub fn lookup_stats(&self) -> IndexLookupStats {
        self.lookups.snapshot()
    }

    /// Build-time shape of the index.
    pub fn stats(&self) -> LexStats {
        LexStats {
            entity_entries: self.entity_labels.len(),
            property_entries: self.object_props.entry_count + self.data_props.entry_count,
            units: self.entities.units.len()
                + self.object_props.units.len()
                + self.data_props.units.len(),
            bigram_postings: self.entities.posting_len()
                + self.object_props.posting_len()
                + self.data_props.posting_len(),
            exact_words: self.object_props.words.len() + self.data_props.words.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference LCS (chars, two-row DP) for soundness checks.
    fn lcs_len(a: &str, b: &str) -> usize {
        let a: Vec<char> = a.chars().collect();
        let b: Vec<char> = b.chars().collect();
        let mut prev = vec![0usize; b.len() + 1];
        let mut cur = vec![0usize; b.len() + 1];
        for &ca in &a {
            for (j, &cb) in b.iter().enumerate() {
                cur[j + 1] = if ca == cb { prev[j] + 1 } else { prev[j + 1].max(cur[j]) };
            }
            std::mem::swap(&mut prev, &mut cur);
            cur[0] = 0;
        }
        prev[b.len()]
    }

    fn lcs_score(a: &str, b: &str) -> f64 {
        let max = a.chars().count().max(b.chars().count());
        if max == 0 {
            0.0
        } else {
            lcs_len(a, b) as f64 / max as f64
        }
    }

    /// Reference property score over the same unit model the index encodes.
    fn property_score(word: &str, name: &str, label: &str) -> f64 {
        let mut best = lcs_score(word, &name.to_lowercase());
        for w in split_camel_case(name) {
            if w == word {
                best = best.max(0.95);
            }
        }
        for w in label.to_lowercase().split_whitespace() {
            if w == word {
                best = best.max(0.95);
            } else {
                best = best.max(lcs_score(word, w) * 0.9);
            }
        }
        best
    }

    fn toy_index() -> LexicalIndex {
        let mut labels: FxHashMap<String, Vec<Iri>> = FxHashMap::default();
        for (label, iri) in [
            ("orhan pamuk", "http://e/Orhan_Pamuk"),
            ("orhan pamul", "http://e/Orhan_Pamul"),
            ("michael jordan", "http://e/Michael_Jordan"),
            ("ankara", "http://e/Ankara"),
            ("a", "http://e/A"),
            ("é", "http://e/Accent"),
        ] {
            labels.entry(label.to_string()).or_default().push(Iri::new(iri));
        }
        LexicalIndex::build(&labels, &Ontology::dbpedia())
    }

    fn entity_survivors(ix: &LexicalIndex, query: &str, t: f64) -> Vec<String> {
        ix.entity_candidates(query, t).map(|(l, _)| l.to_string()).collect()
    }

    #[test]
    fn camel_split_matches_expected() {
        assert_eq!(split_camel_case("populationTotal"), vec!["population", "total"]);
        assert_eq!(split_camel_case("height"), vec!["height"]);
    }

    #[test]
    fn entity_retrieval_is_a_superset_of_true_matches() {
        let ix = toy_index();
        for t in [0.5, 0.7, 0.85, 0.95, 1.0] {
            for query in ["orhan pamuk", "orham pamuk", "ankaro", "a", "é", "", "jordan"] {
                let got = entity_survivors(&ix, query, t);
                for (label, _) in &ix.entity_labels {
                    if lcs_score(query, label) >= t {
                        assert!(got.contains(label), "missing {label:?} for {query:?} @ {t}");
                    }
                }
            }
        }
    }

    #[test]
    fn single_char_query_finds_single_char_label() {
        // Exercises the short-unit bucket: no bigrams exist on either side.
        let ix = toy_index();
        assert!(entity_survivors(&ix, "a", 0.85).contains(&"a".to_string()));
        assert!(entity_survivors(&ix, "é", 0.85).contains(&"é".to_string()));
    }

    #[test]
    fn property_retrieval_is_a_superset_and_sorted() {
        let ix = toy_index();
        let ontology = Ontology::dbpedia();
        for t in [0.5, 0.7, 0.9, 0.95] {
            for word in ["population", "written", "height", "of", "crosses", "zzz", ""] {
                let obj = ix.object_property_candidates(&[word], t);
                assert!(obj.windows(2).all(|w| w[0] < w[1]), "unsorted {obj:?}");
                for (i, p) in ontology.object_properties.iter().enumerate() {
                    if property_score(word, p.name, p.label) >= t {
                        assert!(obj.contains(&i), "missing {} for {word:?} @ {t}", p.name);
                    }
                }
                let data = ix.data_property_candidates(&[word], t);
                for (i, p) in ontology.data_properties.iter().enumerate() {
                    if property_score(word, p.name, p.label) >= t {
                        assert!(data.contains(&i), "missing {} for {word:?} @ {t}", p.name);
                    }
                }
            }
        }
    }

    #[test]
    fn multi_word_union_covers_both_words() {
        let ix = toy_index();
        let ontology = Ontology::dbpedia();
        let both = ix.object_property_candidates(&["written", "crosses"], 0.7);
        for word in ["written", "crosses"] {
            for (i, p) in ontology.object_properties.iter().enumerate() {
                if property_score(word, p.name, p.label) >= 0.7 {
                    assert!(both.contains(&i), "missing {}", p.name);
                }
            }
        }
        // Duplicate words collapse to one lookup's worth of survivors.
        assert_eq!(
            ix.object_property_candidates(&["written", "written"], 0.7),
            ix.object_property_candidates(&["written"], 0.7)
        );
    }

    #[test]
    fn random_sweep_never_loses_a_match() {
        let mut rng = relpat_obs::Rng::seed_from_u64(0xBEEF);
        let ix = toy_index();
        let ontology = Ontology::dbpedia();
        let alphabet: Vec<char> = "abcdehilmnoprstu é".chars().collect();
        for _ in 0..300 {
            let len = (rng.next_u64() % 13) as usize;
            let query: String =
                (0..len).map(|_| alphabet[(rng.next_u64() as usize) % alphabet.len()]).collect();
            for t in [0.5, 0.7, 0.85, 0.9] {
                let got = entity_survivors(&ix, &query, t);
                for (label, _) in &ix.entity_labels {
                    if lcs_score(&query, label) >= t {
                        assert!(got.contains(label), "lost {label:?} for {query:?} @ {t}");
                    }
                }
                let obj = ix.object_property_candidates(&[&query], t);
                for (i, p) in ontology.object_properties.iter().enumerate() {
                    if property_score(&query, p.name, p.label) >= t {
                        assert!(obj.contains(&i), "lost {} for {query:?} @ {t}", p.name);
                    }
                }
            }
        }
    }

    #[test]
    fn bounds_prune_and_stats_accumulate() {
        let ix = toy_index();
        let before = ix.lookup_stats();
        let _ = entity_survivors(&ix, "orhan pamuk", 0.85);
        let delta = ix.lookup_stats().delta_since(&before);
        assert!(delta.probed > 0);
        // Entity entries have exactly one unit and no word map, so every
        // probed unit is either pruned or scored.
        assert_eq!(delta.probed, delta.pruned + delta.scored);
        // The near-duplicate label survives, unrelated labels are pruned.
        let survivors = entity_survivors(&ix, "orhan pamuk", 0.85);
        assert!(survivors.contains(&"orhan pamuk".to_string()));
        assert!(survivors.contains(&"orhan pamul".to_string()));
        assert!(!survivors.contains(&"michael jordan".to_string()));
    }

    #[test]
    fn build_stats_report_shape() {
        let ix = toy_index();
        let s = ix.stats();
        assert_eq!(s.entity_entries, 6);
        let ontology = Ontology::dbpedia();
        assert_eq!(
            s.property_entries,
            ontology.object_properties.len() + ontology.data_properties.len()
        );
        assert!(s.units > s.entity_entries + s.property_entries); // label words add units
        assert!(s.bigram_postings > 0);
        assert!(s.exact_words > 0);
    }

    #[test]
    fn char_bag_intersection_bounds_lcs() {
        let mut rng = relpat_obs::Rng::seed_from_u64(7);
        let alphabet: Vec<char> = "abcdefgé".chars().collect();
        for _ in 0..200 {
            let mk = |rng: &mut relpat_obs::Rng| -> String {
                let len = (rng.next_u64() % 10) as usize;
                (0..len).map(|_| alphabet[(rng.next_u64() as usize) % alphabet.len()]).collect()
            };
            let (a, b) = (mk(&mut rng), mk(&mut rng));
            let inter = CharBag::of(&a).intersection(&CharBag::of(&b));
            assert!(inter >= lcs_len(&a, &b), "bag bound broken for {a:?} vs {b:?}");
            assert!(inter <= a.chars().count().min(b.chars().count()));
        }
    }
}
