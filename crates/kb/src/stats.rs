//! Knowledge-base statistics — the numbers a DBpedia-style release reports
//! (the paper quotes DBpedia's: "3.77 million things, including 764,000
//! persons, 573,000 places, ..."). Used by `explore_kb` and the reports.

use relpat_rdf::vocab::{dbont, res};
use relpat_rdf::Term;
use relpat_obs::fx::FxHashMap;
use relpat_obs::Json;

use crate::kb::KnowledgeBase;

/// Aggregate statistics over a knowledge base.
#[derive(Debug, Clone)]
pub struct KbStats {
    pub triples: usize,
    pub entities: usize,
    /// Direct instances per class (local name → count), sorted descending.
    pub instances_per_class: Vec<(String, usize)>,
    /// Facts per property (local name → count), sorted descending.
    pub facts_per_property: Vec<(String, usize)>,
    /// Page-link degree distribution: (min, median, max).
    pub degree_min: usize,
    pub degree_median: usize,
    pub degree_max: usize,
    /// Labels shared by more than one entity (ambiguity surface).
    pub ambiguous_labels: usize,
}

impl KbStats {
    /// Computes the statistics in one pass over the store.
    pub fn compute(kb: &KnowledgeBase) -> KbStats {
        let mut class_counts: FxHashMap<String, usize> = FxHashMap::default();
        let mut property_counts: FxHashMap<String, usize> = FxHashMap::default();

        for t in kb.graph.iter() {
            let Term::Iri(pred) = &t.predicate else { continue };
            if pred.as_str() == relpat_rdf::vocab::rdf::TYPE {
                if let Term::Iri(class) = &t.object {
                    if class.as_str().starts_with(dbont::NS)
                        && t.subject
                            .as_iri()
                            .is_some_and(|s| s.as_str().starts_with(res::NS))
                    {
                        *class_counts.entry(class.local_name().to_string()).or_insert(0) += 1;
                    }
                }
            } else if pred.as_str().starts_with(dbont::NS)
                && pred.as_str() != relpat_rdf::vocab::WIKI_PAGE_LINK
            {
                *property_counts.entry(pred.local_name().to_string()).or_insert(0) += 1;
            }
        }

        let mut degrees: Vec<usize> = kb
            .labels_iter()
            .flat_map(|(_, iris)| iris.iter().map(|i| kb.page_degree(i)))
            .collect();
        degrees.sort_unstable();

        let ambiguous_labels = kb.labels_iter().filter(|(_, iris)| iris.len() > 1).count();

        KbStats {
            triples: kb.len(),
            entities: kb.entity_count(),
            instances_per_class: sorted_desc(class_counts),
            facts_per_property: sorted_desc(property_counts),
            degree_min: degrees.first().copied().unwrap_or(0),
            degree_median: degrees.get(degrees.len() / 2).copied().unwrap_or(0),
            degree_max: degrees.last().copied().unwrap_or(0),
            ambiguous_labels,
        }
    }

    /// Instances of a class, including subclasses (taxonomy-aware count).
    pub fn instances_under(kb: &KnowledgeBase, class: &str) -> usize {
        kb.labels_iter()
            .flat_map(|(_, iris)| iris.iter())
            .filter(|iri| kb.is_instance_of(iri, class))
            .count()
    }

    /// Serializes the statistics as a JSON object.
    pub fn to_json(&self) -> Json {
        let counted = |pairs: &[(String, usize)]| {
            let mut obj = Json::obj();
            for (name, n) in pairs {
                obj = obj.set(name, *n);
            }
            obj
        };
        Json::obj()
            .set("triples", self.triples)
            .set("entities", self.entities)
            .set("instances_per_class", counted(&self.instances_per_class))
            .set("facts_per_property", counted(&self.facts_per_property))
            .set("degree_min", self.degree_min)
            .set("degree_median", self.degree_median)
            .set("degree_max", self.degree_max)
            .set("ambiguous_labels", self.ambiguous_labels)
    }

    /// Renders a DBpedia-release-style summary paragraph.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} triples over {} things ({} ambiguous labels).",
            self.triples, self.entities, self.ambiguous_labels
        );
        let _ = writeln!(out, "Largest classes:");
        for (class, n) in self.instances_per_class.iter().take(8) {
            let _ = writeln!(out, "  {n:>6}  {class}");
        }
        let _ = writeln!(out, "Most-asserted properties:");
        for (prop, n) in self.facts_per_property.iter().take(8) {
            let _ = writeln!(out, "  {n:>6}  {prop}");
        }
        let _ = writeln!(
            out,
            "Page-link degree: min {}, median {}, max {}.",
            self.degree_min, self.degree_median, self.degree_max
        );
        out
    }
}

fn sorted_desc(map: FxHashMap<String, usize>) -> Vec<(String, usize)> {
    let mut v: Vec<(String, usize)> = map.into_iter().collect();
    v.sort_by(|(an, a), (bn, b)| b.cmp(a).then_with(|| an.cmp(bn)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, KbConfig};

    #[test]
    fn stats_cover_the_generated_kb() {
        let kb = generate(&KbConfig::tiny());
        let stats = KbStats::compute(&kb);
        assert_eq!(stats.triples, kb.len());
        assert_eq!(stats.entities, kb.entity_count());
        assert!(!stats.instances_per_class.is_empty());
        assert!(!stats.facts_per_property.is_empty());
        // Direct class counts sum to at least the entity count (every entity
        // has exactly one direct class in the generator).
        let total: usize = stats.instances_per_class.iter().map(|(_, n)| n).sum();
        assert_eq!(total, stats.entities);
    }

    #[test]
    fn ambiguity_is_detected() {
        let kb = generate(&KbConfig::tiny());
        let stats = KbStats::compute(&kb);
        // Michael Jordan ×2 and Springfield ×3 at minimum.
        assert!(stats.ambiguous_labels >= 2, "{}", stats.ambiguous_labels);
    }

    #[test]
    fn taxonomy_aware_counts_dominate_direct_counts() {
        let kb = generate(&KbConfig::tiny());
        let stats = KbStats::compute(&kb);
        let direct_person = stats
            .instances_per_class
            .iter()
            .find(|(c, _)| c == "Person")
            .map(|(_, n)| *n)
            .unwrap_or(0);
        let under_person = KbStats::instances_under(&kb, "Person");
        assert!(under_person > direct_person);
        assert!(under_person >= 30);
    }

    #[test]
    fn degrees_are_ordered() {
        let kb = generate(&KbConfig::tiny());
        let stats = KbStats::compute(&kb);
        assert!(stats.degree_min <= stats.degree_median);
        assert!(stats.degree_median <= stats.degree_max);
        assert!(stats.degree_max > 0);
    }

    #[test]
    fn summary_renders_and_serializes() {
        let kb = generate(&KbConfig::tiny());
        let stats = KbStats::compute(&kb);
        let s = stats.summary();
        assert!(s.contains("triples"));
        assert!(s.contains("Largest classes"));
        assert!(stats.to_json().to_string().contains("instances_per_class"));
    }

    #[test]
    fn wikilinks_not_counted_as_facts() {
        let kb = generate(&KbConfig::tiny());
        let stats = KbStats::compute(&kb);
        assert!(!stats
            .facts_per_property
            .iter()
            .any(|(p, _)| p == "wikiPageWikiLink"));
    }
}
