//! Name pools for the deterministic entity generator.
//!
//! Pools are fixed arrays; the generator combines them with a seeded RNG, so
//! the same seed always yields the same knowledge base. A handful of labels
//! are deliberately reusable (see `AMBIGUOUS_CITY`) to exercise the named
//! entity disambiguation step.

pub const FIRST_NAMES: &[&str] = &[
    "Adam", "Alice", "Anton", "Ayse", "Boris", "Bruno", "Carla", "Cem", "Clara", "Daniel",
    "Deniz", "Diego", "Elena", "Emre", "Erik", "Fatma", "Felix", "Gloria", "Hakan", "Helen",
    "Igor", "Irene", "Ivan", "Jana", "Jonas", "Julia", "Kemal", "Laura", "Leyla", "Lucas",
    "Maria", "Marta", "Mehmet", "Murat", "Nadia", "Nils", "Olga", "Omer", "Paula", "Pedro",
    "Petra", "Rosa", "Selim", "Sofia", "Stefan", "Tarik", "Tomas", "Vera", "Viktor", "Zeynep",
];

pub const LAST_NAMES: &[&str] = &[
    "Aksoy", "Almeida", "Andersen", "Aydin", "Becker", "Bianchi", "Borisov", "Castro", "Celik",
    "Costa", "Demir", "Dimitrov", "Dubois", "Eriksen", "Fischer", "Fontaine", "Garcia",
    "Hansen", "Hoffmann", "Ivanov", "Jansen", "Kaya", "Keller", "Kovacs", "Larsen", "Lehmann",
    "Lopez", "Marino", "Meyer", "Moreau", "Navarro", "Nielsen", "Novak", "Ozturk", "Pavlov",
    "Peeters", "Petrov", "Ricci", "Rossi", "Sahin", "Santos", "Schmidt", "Silva", "Sorensen",
    "Vasquez", "Weber", "Yilmaz", "Zhukov", "Zimmermann", "Koch",
];

pub const CITY_NAMES: &[&str] = &[
    "Ankara", "Istanbul", "Izmir", "Berlin", "Hamburg", "Munich", "Paris", "Lyon", "Marseille",
    "Rome", "Milan", "Naples", "Madrid", "Barcelona", "Seville", "Lisbon", "Porto", "Vienna",
    "Prague", "Warsaw", "Krakow", "Budapest", "Athens", "Sofia", "Bucharest", "Belgrade",
    "Zagreb", "Oslo", "Stockholm", "Copenhagen", "Helsinki", "Dublin", "Amsterdam", "Brussels",
    "Zurich", "Geneva", "Moscow", "Kiev", "Minsk", "Riga", "Vilnius", "Tallinn", "Washington",
    "Brooklyn", "Chicago", "Boston", "Gary", "Ulm", "Bonn", "Hodgenville", "Los Angeles",
    "Toronto", "Montreal", "Ottawa", "Cairo", "Tunis", "Rabat", "Tokyo", "Kyoto", "Osaka",
];

/// A city label minted several times in different countries, to exercise
/// disambiguation.
pub const AMBIGUOUS_CITY: &str = "Springfield";

pub const COUNTRY_NAMES: &[&str] = &[
    "Turkey", "Germany", "France", "Italy", "Spain", "Portugal", "Austria", "Poland",
    "Hungary", "Greece", "Bulgaria", "Romania", "Serbia", "Croatia", "Norway", "Sweden",
    "Denmark", "Finland", "Ireland", "Netherlands", "Belgium", "Switzerland", "Russia",
    "Ukraine", "Latvia", "Lithuania", "Estonia", "United States", "Canada", "Egypt",
    "Tunisia", "Morocco", "Japan", "Czech Republic", "Belarus",
];

pub const LANGUAGE_NAMES: &[&str] = &[
    "Turkish", "German", "French", "Italian", "Spanish", "Portuguese", "Polish", "Hungarian",
    "Greek", "Bulgarian", "Romanian", "Serbian", "Croatian", "Norwegian", "Swedish", "Danish",
    "Finnish", "English", "Dutch", "Russian", "Ukrainian", "Latvian", "Lithuanian",
    "Estonian", "Arabic", "Japanese", "Czech", "Belarusian",
];

pub const CURRENCY_NAMES: &[&str] = &[
    "Lira", "Euro", "Zloty", "Forint", "Leu", "Dinar", "Kuna", "Krone", "Krona", "Franc",
    "Ruble", "Hryvnia", "Dollar", "Pound", "Yen", "Koruna",
];

pub const TITLE_ADJECTIVES: &[&str] = &[
    "Silent", "Red", "Black", "White", "Hidden", "Lost", "Golden", "Broken", "Distant",
    "Endless", "Frozen", "Burning", "Quiet", "Wild", "Secret", "Last", "First", "Blue",
    "Crimson", "Pale", "Hollow", "Shattered", "Wandering", "Forgotten", "Eternal",
];

pub const TITLE_NOUNS: &[&str] = &[
    "River", "Mountain", "Garden", "Mirror", "Tower", "Harbor", "Forest", "Storm", "Voyage",
    "Letter", "Winter", "Summer", "Shadow", "Castle", "Bridge", "Station", "Library",
    "Painter", "Daughter", "Stranger", "Horizon", "Island", "Lantern", "Orchard", "Compass",
];

pub const COMPANY_STEMS: &[&str] = &[
    "Vertex", "Nimbus", "Aquila", "Borealis", "Cinder", "Datapoint", "Eastgate", "Fennec",
    "Granite", "Helios", "Ionic", "Juniper", "Kestrel", "Lumen", "Meridian", "Northwind",
    "Obsidian", "Pinnacle", "Quartz", "Riverton", "Solstice", "Tundra", "Umbra", "Vanguard",
    "Westbrook", "Zephyr",
];

pub const COMPANY_SUFFIXES: &[&str] =
    &["Systems", "Industries", "Software", "Dynamics", "Group", "Labs", "Media", "Motors"];

pub const RIVER_STEMS: &[&str] = &[
    "Ald", "Bren", "Cald", "Dur", "Elb", "Fen", "Gar", "Hav", "Isk", "Jor", "Kel", "Lor",
    "Mor", "Nar", "Ord", "Pell", "Quin", "Rhen", "Sav", "Tav", "Ur", "Vol", "Wes", "Yar",
];

pub const MOUNT_STEMS: &[&str] = &[
    "Ara", "Bel", "Cro", "Dor", "Eri", "Fal", "Gor", "Hel", "Ina", "Jur", "Kar", "Lom",
    "Mon", "Nev", "Olt", "Pir", "Ros", "Sor", "Tat", "Urs", "Vel", "Zla",
];

pub const UNIVERSITY_CITY_FORMS: &[&str] =
    &["University of {}", "{} Technical University", "{} State University", "{} Institute of Technology"];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn pools_are_duplicate_free() {
        for pool in [
            FIRST_NAMES, LAST_NAMES, CITY_NAMES, COUNTRY_NAMES, LANGUAGE_NAMES,
            CURRENCY_NAMES, TITLE_ADJECTIVES, TITLE_NOUNS, COMPANY_STEMS, RIVER_STEMS,
            MOUNT_STEMS,
        ] {
            let set: HashSet<_> = pool.iter().collect();
            assert_eq!(set.len(), pool.len());
        }
    }

    #[test]
    fn paper_locations_present() {
        // Cities referenced by the paper's running examples must exist.
        for needle in ["Gary", "Istanbul", "Washington", "Ulm", "Bonn", "Hodgenville"] {
            assert!(CITY_NAMES.contains(&needle), "{needle} missing");
        }
    }

    #[test]
    fn ambiguous_city_not_in_main_pool() {
        assert!(!CITY_NAMES.contains(&AMBIGUOUS_CITY));
    }
}
