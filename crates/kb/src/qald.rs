//! QALD-2-style benchmark questions over the synthetic knowledge base.
//!
//! Mirrors the paper's evaluation setup (§3): a 100-question test set, of
//! which 45 are excluded because their gold query needs YAGO classes, YAGO
//! entities or raw RDF (`dbprop:`) properties — the paper kept the remaining
//! **55** DBpedia-ontology-only questions. Question phrasings are modeled on
//! the actual QALD-2 DBpedia test set.
//!
//! Each retained question carries a gold SPARQL query; gold answers are
//! computed by executing it against the knowledge base, so the benchmark
//! stays consistent under any generator configuration.

use relpat_rdf::Term;

use crate::kb::KnowledgeBase;

/// Why a question is excluded from the evaluated subset (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exclusion {
    /// Gold query requires a YAGO class (e.g. `yago:FemaleAstronauts`).
    YagoClass,
    /// Gold query requires a YAGO entity.
    YagoEntity,
    /// Gold query requires a raw infobox property (`dbprop:`).
    RdfProperty,
}

/// One benchmark question.
#[derive(Debug, Clone)]
pub struct QaldQuestion {
    pub id: u32,
    pub text: String,
    /// Gold SPARQL over the synthetic KB; `None` for excluded questions
    /// (their gold needs vocabulary outside the KB, which is the point).
    pub gold_sparql: Option<String>,
    pub exclusion: Option<Exclusion>,
    /// True if the gold answer is a boolean (ASK question).
    pub boolean: bool,
}

impl QaldQuestion {
    fn new(id: u32, text: &str, gold: &str) -> Self {
        QaldQuestion {
            id,
            text: text.to_string(),
            gold_sparql: Some(gold.to_string()),
            exclusion: None,
            boolean: gold.trim_start().to_uppercase().starts_with("ASK"),
        }
    }

    fn excluded(id: u32, text: &str, why: Exclusion) -> Self {
        QaldQuestion {
            id,
            text: text.to_string(),
            gold_sparql: None,
            exclusion: Some(why),
            boolean: false,
        }
    }

    /// Executes the gold query, returning the expected answer set.
    /// Boolean questions return a single `xsd:boolean` literal term.
    pub fn gold_answers(&self, kb: &KnowledgeBase) -> Vec<Term> {
        let Some(sparql) = &self.gold_sparql else { return Vec::new() };
        match kb.query(sparql) {
            Ok(relpat_sparql::QueryResult::Solutions(sols)) => {
                let mut out: Vec<Term> = Vec::new();
                for row in &sols.rows {
                    for cell in row.iter().flatten() {
                        if !out.contains(cell) {
                            out.push(cell.clone());
                        }
                    }
                }
                out
            }
            Ok(relpat_sparql::QueryResult::Boolean(b)) => {
                vec![Term::Literal(relpat_rdf::Literal::boolean(b))]
            }
            Err(_) => Vec::new(),
        }
    }
}

/// Builds the 100-question benchmark. Requires the standard generated KB
/// (paper-example entities must exist).
pub fn qald_questions(kb: &KnowledgeBase) -> Vec<QaldQuestion> {
    let mut q: Vec<QaldQuestion> = Vec::new();
    let mut id = 0u32;
    let mut next = || {
        id += 1;
        id
    };

    // ----------------------------------------------------------------------
    // Part 1 — the 55 DBpedia-ontology questions (evaluated subset).
    // Roughly a third are within the pipeline's syntactic/mapping coverage
    // (the paper attempted 18); the rest exercise structures the paper's
    // Discussion lists as unhandled.
    // ----------------------------------------------------------------------

    // -- covered archetypes ---------------------------------------------------
    q.push(QaldQuestion::new(
        next(),
        "Which book is written by Orhan Pamuk?",
        "SELECT ?x { ?x rdf:type dbont:Book . ?x dbont:author res:Orhan_Pamuk }",
    ));
    q.push(QaldQuestion::new(
        next(),
        "Which books are written by Frank Herbert?",
        "SELECT ?x { ?x rdf:type dbont:Book . ?x dbont:author res:Frank_Herbert }",
    ));
    q.push(QaldQuestion::new(
        next(),
        "Who wrote Snow?",
        "SELECT ?x { res:Snow dbont:author ?x }",
    ));
    q.push(QaldQuestion::new(
        next(),
        "How tall is Michael Jordan?",
        "SELECT ?h { <http://dbpedia.org/resource/Michael_Jordan_(2)> dbont:height ?h }",
    ));
    q.push(QaldQuestion::new(
        next(),
        "What is the height of Michael Jordan?",
        "SELECT ?h { <http://dbpedia.org/resource/Michael_Jordan_(2)> dbont:height ?h }",
    ));
    q.push(QaldQuestion::new(
        next(),
        "Where did Abraham Lincoln die?",
        "SELECT ?p { res:Abraham_Lincoln dbont:deathPlace ?p }",
    ));
    q.push(QaldQuestion::new(
        next(),
        "Where was Michael Jackson born?",
        "SELECT ?p { res:Michael_Jackson dbont:birthPlace ?p }",
    ));
    q.push(QaldQuestion::new(
        next(),
        "When was Albert Einstein born?",
        "SELECT ?d { res:Albert_Einstein dbont:birthDate ?d }",
    ));
    q.push(QaldQuestion::new(
        next(),
        "When did Frank Herbert die?",
        "SELECT ?d { res:Frank_Herbert dbont:deathDate ?d }",
    ));
    q.push(QaldQuestion::new(
        next(),
        "Who directed Titanic?",
        "SELECT ?x { res:Titanic dbont:director ?x }",
    ));
    q.push(QaldQuestion::new(
        next(),
        "Which films did James Cameron direct?",
        "SELECT ?x { ?x rdf:type dbont:Film . ?x dbont:director res:James_Cameron }",
    ));
    q.push(QaldQuestion::new(
        next(),
        "Give me all films directed by James Cameron.",
        "SELECT ?x { ?x rdf:type dbont:Film . ?x dbont:director res:James_Cameron }",
    ));
    q.push(QaldQuestion::new(
        next(),
        "Who is the wife of Barack Obama?",
        "SELECT ?x { res:Barack_Obama dbont:spouse ?x }",
    ));
    q.push(QaldQuestion::new(
        next(),
        "What is the capital of Turkey?",
        "SELECT ?x { res:Turkey dbont:capital ?x }",
    ));
    q.push(QaldQuestion::new(
        next(),
        "Who is the author of Dune?",
        "SELECT ?x { res:Dune dbont:author ?x }",
    ));
    q.push(QaldQuestion::new(
        next(),
        "In which city was Ludwig van Beethoven born?",
        "SELECT ?p { res:Ludwig_van_Beethoven dbont:birthPlace ?p }",
    ));
    q.push(QaldQuestion::new(
        next(),
        "Give me all books written by Orhan Pamuk.",
        "SELECT ?x { ?x rdf:type dbont:Book . ?x dbont:author res:Orhan_Pamuk }",
    ));

    // -- in-coverage but error-prone (these keep precision below 100%) -------
    q.push(QaldQuestion::new(
        next(),
        // Ambiguous mention: three Springfields; the QALD gold fixes one
        // specific reading — a disambiguation-driven precision trap.
        "What is the population of Springfield?",
        "SELECT ?p { <http://dbpedia.org/resource/Springfield_(2)> dbont:populationTotal ?p }",
    ));
    q.push(QaldQuestion::new(
        next(),
        // "writer" property exists for songs; for books the fact is under
        // dbont:author. String-similarity alone proposes dbont:writer first.
        "Who is the writer of My Name is Red?",
        "SELECT ?x { res:My_Name_is_Red dbont:author ?x }",
    ));
    q.push(QaldQuestion::new(
        next(),
        "What is the population of Turkey?",
        "SELECT ?p { res:Turkey dbont:populationTotal ?p }",
    ));
    q.push(QaldQuestion::new(
        next(),
        // Disambiguation + pattern-noise trap: the gold reading is the
        // scientist Michael Jordan (who has a residence fact); the famous
        // athlete outranks him on page-link centrality, has no residence,
        // and the pipeline then falls back to the noisy "live → birthPlace"
        // pattern — the paper's own PATTY criticism (§2.2.3).
        "Where does Michael Jordan live?",
        "SELECT ?p { res:Michael_Jordan dbont:residence ?p }",
    ));

    // -- out of coverage: structures the paper's Discussion flags ------------
    let uncovered: &[(&str, &str)] = &[
        (
            "Is Frank Herbert still alive?",
            // Paper §5: needs mapping "alive" → a deathDate existence
            // check. Herbert died in 1986, so the gold answer is "false";
            // encoded as an ASK that evaluates to false.
            "ASK { res:Frank_Herbert dbont:deathDate \"9999-01-01\"^^xsd:date }",
        ),
        ("What is the highest mountain?",
         "SELECT ?m { ?m rdf:type dbont:Mountain . ?m dbont:elevation ?e } ORDER BY DESC(?e) LIMIT 1"),
        ("What is the longest river?",
         "SELECT ?r { ?r rdf:type dbont:River . ?r dbont:length ?l } ORDER BY DESC(?l) LIMIT 1"),
        ("Which country has the most inhabitants?",
         "SELECT ?c { ?c rdf:type dbont:Country . ?c dbont:populationTotal ?p } ORDER BY DESC(?p) LIMIT 1"),
        ("How many books did Orhan Pamuk write?",
         "SELECT (COUNT(DISTINCT ?x) AS ?c) { ?x rdf:type dbont:Book . ?x dbont:author res:Orhan_Pamuk }"),
        ("How many employees does Vertex Systems have?",
         "SELECT ?n { res:Vertex_Systems dbont:numberOfEmployees ?n }"),
        ("Which cities have more than three million inhabitants?",
         "SELECT ?c { ?c rdf:type dbont:City . ?c dbont:populationTotal ?p FILTER(?p > 3000000) }"),
        ("Was Abraham Lincoln married to Michelle Obama?",
         "ASK { res:Abraham_Lincoln dbont:spouse res:Michelle_Obama }"),
        ("Which books were written by the husband of Michelle Obama?",
         "SELECT ?b { res:Michelle_Obama dbont:spouse ?h . ?b dbont:author ?h }"),
        ("Which films starring James Cameron were released after 2000?",
         "SELECT ?f { ?f dbont:starring res:James_Cameron }"),
        ("Who was the doctoral supervisor of Albert Einstein?",
         "SELECT ?x { res:Albert_Einstein dbont:almaMater ?x }"),
        ("Which countries are connected by the Alda Bridge?",
         "SELECT ?c { res:Alda_Bridge dbont:crosses ?r . ?r dbont:mouthCountry ?c }"),
        ("Give me all cities in Germany with more than 100000 inhabitants.",
         "SELECT ?c { ?c dbont:country res:Germany . ?c dbont:populationTotal ?p FILTER(?p > 100000) }"),
        ("Which mountains are higher than Mount Araon?",
         "SELECT ?m { res:Mount_Araon dbont:elevation ?e0 . ?m rdf:type dbont:Mountain . ?m dbont:elevation ?e FILTER(?e > ?e0) }"),
        ("Is the Alda River longer than the Brena River?",
         "ASK { res:Alda_River dbont:length ?a . res:Brena_River dbont:length ?b FILTER(?a > ?b) }"),
        ("When was the company with the most employees founded?",
         "SELECT ?d { ?c dbont:numberOfEmployees ?n . ?c dbont:foundingDate ?d } ORDER BY DESC(?n) LIMIT 1"),
        ("Who are the children of the leader of the United States?",
         "SELECT ?k { res:United_States dbont:leaderName ?l . ?l dbont:child ?k }"),
        ("Give me all albums by musicians born in Bonn.",
         "SELECT ?a { ?a dbont:artist ?m . ?m dbont:birthPlace res:Bonn }"),
        ("Which universities are located in the capital of Turkey?",
         "SELECT ?u { res:Turkey dbont:capital ?c . ?u dbont:location ?c }"),
        ("How many films did the director of Titanic make?",
         "SELECT (COUNT(DISTINCT ?f) AS ?c) { res:Titanic dbont:director ?d . ?f dbont:director ?d }"),
        ("Which game developers are headquartered in Ankara?",
         "SELECT ?c { ?g dbont:developer ?c . ?c dbont:headquarter res:Ankara }"),
        ("What is the deepest lake?",
         "SELECT ?l { ?l rdf:type dbont:Lake . ?l dbont:depth ?d } ORDER BY DESC(?d) LIMIT 1"),
        ("Which presidents were born before 1900?",
         "SELECT ?p { ?p rdf:type dbont:President . ?p dbont:birthDate ?d FILTER(?d < \"1900-01-01\"^^xsd:date) }"),
        ("Is Ankara bigger than Istanbul?",
         "ASK { res:Ankara dbont:populationTotal ?a . res:Istanbul dbont:populationTotal ?i FILTER(?a > ?i) }"),
        ("Give me the websites of all companies founded by politicians.",
         "SELECT ?c { ?c dbont:foundedBy ?p . ?p rdf:type dbont:Politician }"),
        ("Which bands have more than two members?",
         "SELECT ?b { ?b rdf:type dbont:Band }"),
        ("What did Barack Obama study?",
         "SELECT ?u { res:Barack_Obama dbont:almaMater ?u }"),
        ("Who succeeded Abraham Lincoln as president?",
         "SELECT ?p { ?p rdf:type dbont:President }"),
        ("Which rivers flow through more than one country?",
         "SELECT ?r { ?r rdf:type dbont:River }"),
        ("How old is Michael Jordan?",
         "SELECT ?d { <http://dbpedia.org/resource/Michael_Jordan_(2)> dbont:birthDate ?d }"),
        ("Which films were produced and directed by the same person?",
         "SELECT ?f { ?f dbont:director ?d . ?f dbont:producer ?d }"),
        ("Which rivers cross Germany?",
         "SELECT ?r { ?r rdf:type dbont:River . ?r dbont:mouthCountry res:Germany }"),
        ("Who wrote Thriller?",
         "SELECT ?x { res:Thriller dbont:artist ?x }"),
        ("Which lakes are deeper than 100 meters?",
         "SELECT ?l { ?l rdf:type dbont:Lake . ?l dbont:depth ?d FILTER(?d > 100) }"),
    ];
    for (text, gold) in uncovered {
        q.push(QaldQuestion::new(next(), text, gold));
    }

    // ----------------------------------------------------------------------
    // Part 2 — the 45 excluded questions (YAGO classes/entities or raw
    // `dbprop:` infobox properties), phrased after real QALD-2 items.
    // ----------------------------------------------------------------------
    let yago_class: &[&str] = &[
        "Give me all female Russian astronauts.",
        "Give me all Australian nonprofit organizations.",
        "Which American presidents were in office during the Vietnam War?",
        "Give me all Danish films.",
        "Which German cities have more than 250000 inhabitants?",
        "Give me all Dutch ice hockey players.",
        "Which European countries have a constitutional monarchy?",
        "Give me all Argentine films from the 1950s.",
        "Which Greek goddesses dwelt on Mount Olympus?",
        "Give me all left-handed tennis players.",
        "Which Italian operas premiered in Venice?",
        "Give me all Canadian Grunge record labels.",
        "Which Asian capitals host Summer Olympic Games?",
        "Give me all Swedish death metal bands.",
        "Which living British monarchs are married?",
    ];
    let yago_entity: &[&str] = &[
        "Who was the successor of John F. Kennedy?",
        "What is the official website of Tom Cruise?",
        "Which organizations were founded in the same year as Google?",
        "Is Egypts largest city also its capital?",
        "Which software has been developed by organizations founded in California?",
        "Give me the birthdays of all actors of the television show Charmed.",
        "Who produced the most films among Hollywood studios?",
        "What is the melting point of copper?",
        "Which telecommunications organizations are located in Belgium?",
        "Who developed the video game World of Warcraft?",
        "What are the official languages of the Philippines?",
        "Who is the owner of Universal Studios?",
        "Through which countries does the Yenisei river flow?",
        "When did the Boston Tea Party take place?",
        "Which classis does the Millepede belong to?",
    ];
    let rdf_prop: &[&str] = &[
        "What is the revenue of IBM?",
        "Give me the homepage of Forbes.",
        "What is the wavelength of indigo?",
        "Which countries have places with more than two caves?",
        "What is the total amount of men and women serving in the FDNY?",
        "How often did Nicole Kidman marry?",
        "What is the area code of Berlin?",
        "Who wrote the lyrics for the Polish national anthem?",
        "In which UK city are the headquarters of the MI6?",
        "What is the ruling party in Lisbon?",
        "Which country does the creator of Miffy come from?",
        "What is the founding year of the brewery that produces Pilsner Urquell?",
        "Give me the Apollo 14 astronauts.",
        "How tall is Claudia Schiffer in feet?",
        "What is the time zone of Salt Lake City?",
    ];
    for text in yago_class {
        q.push(QaldQuestion::excluded(next(), text, Exclusion::YagoClass));
    }
    for text in yago_entity {
        q.push(QaldQuestion::excluded(next(), text, Exclusion::YagoEntity));
    }
    for text in rdf_prop {
        q.push(QaldQuestion::excluded(next(), text, Exclusion::RdfProperty));
    }

    debug_assert_eq!(q.len(), 100);
    debug_assert_eq!(q.iter().filter(|x| x.exclusion.is_none()).count(), 55);
    // Gold queries must be well-formed against this KB (answers may be empty
    // only for ASK-false cases).
    debug_assert!(q
        .iter()
        .filter_map(|x| x.gold_sparql.as_ref())
        .all(|s| kb.query(s).is_ok()));
    q
}

/// The evaluated subset: questions surviving the paper's exclusion filter.
pub fn evaluated_subset(questions: &[QaldQuestion]) -> Vec<&QaldQuestion> {
    questions.iter().filter(|q| q.exclusion.is_none()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, KbConfig};

    fn kb() -> KnowledgeBase {
        generate(&KbConfig::tiny())
    }

    #[test]
    fn hundred_questions_fiftyfive_evaluated() {
        let kb = kb();
        let qs = qald_questions(&kb);
        assert_eq!(qs.len(), 100);
        assert_eq!(evaluated_subset(&qs).len(), 55);
        assert_eq!(qs.iter().filter(|q| q.exclusion.is_some()).count(), 45);
    }

    #[test]
    fn ids_are_unique_and_dense() {
        let kb = kb();
        let qs = qald_questions(&kb);
        let mut ids: Vec<u32> = qs.iter().map(|q| q.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 100);
        assert_eq!(ids[0], 1);
        assert_eq!(ids[99], 100);
    }

    #[test]
    fn evaluated_questions_have_gold_queries_that_run() {
        let kb = kb();
        for q in evaluated_subset(&qald_questions(&kb)) {
            let sparql = q.gold_sparql.as_ref().expect("evaluated question needs gold");
            kb.query(sparql).unwrap_or_else(|e| panic!("q{} gold fails: {e}", q.id));
        }
    }

    #[test]
    fn most_gold_answers_are_nonempty() {
        let kb = kb();
        let qs = qald_questions(&kb);
        let nonempty = evaluated_subset(&qs)
            .iter()
            .filter(|q| !q.gold_answers(&kb).is_empty())
            .count();
        // ASK-false and a few generator-dependent golds may be empty, but the
        // overwhelming majority must resolve.
        assert!(nonempty >= 45, "only {nonempty}/55 golds resolve");
    }

    #[test]
    fn figure1_question_gold_is_pamuks_books() {
        let kb = kb();
        let qs = qald_questions(&kb);
        let golds = qs[0].gold_answers(&kb);
        assert_eq!(golds.len(), 3);
    }

    #[test]
    fn boolean_flag_set_for_ask() {
        let kb = kb();
        let qs = qald_questions(&kb);
        let alive = qs.iter().find(|q| q.text.contains("still alive")).unwrap();
        assert!(alive.boolean);
        assert!(!qs[0].boolean);
    }

    #[test]
    fn excluded_questions_have_no_gold() {
        let kb = kb();
        for q in qald_questions(&kb) {
            assert_eq!(q.exclusion.is_some(), q.gold_sparql.is_none());
        }
    }
}
