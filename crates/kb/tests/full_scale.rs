//! Full-scale (default-configuration) knowledge-base integration tests —
//! the exact store the Table-2 reproduction runs on.

use relpat_kb::{evaluated_subset, generate, qald_questions, KbConfig, KbStats, KnowledgeBase};
use std::sync::OnceLock;

fn kb() -> &'static KnowledgeBase {
    static KB: OnceLock<KnowledgeBase> = OnceLock::new();
    KB.get_or_init(|| generate(&KbConfig::default()))
}

#[test]
fn default_scale_matches_experiments_md() {
    // EXPERIMENTS.md quotes these numbers; they are seed-pinned.
    let kb = kb();
    assert_eq!(kb.len(), 9641, "triple count drifted — update EXPERIMENTS.md");
    assert_eq!(kb.entity_count(), 1054, "entity count drifted — update EXPERIMENTS.md");
}

#[test]
fn every_famous_example_resolves_at_full_scale() {
    let kb = kb();
    for label in [
        "Orhan Pamuk",
        "Snow",
        "The Museum of Innocence",
        "Michael Jordan",
        "Abraham Lincoln",
        "Michael Jackson",
        "Frank Herbert",
        "Albert Einstein",
        "Ludwig van Beethoven",
        "James Cameron",
        "Titanic",
        "Barack Obama",
        "Turkey",
        "Ankara",
    ] {
        assert!(!kb.entities_with_label(label).is_empty(), "{label} missing");
    }
}

#[test]
fn gold_queries_resolve_on_the_full_kb() {
    let kb = kb();
    let questions = qald_questions(kb);
    let mut nonempty = 0;
    for q in evaluated_subset(&questions) {
        let gold = q.gold_answers(kb);
        if !gold.is_empty() {
            nonempty += 1;
        }
    }
    // A tail of golds is legitimately empty: questions about optional
    // generator content (e.g. a bridge that only exists with probability
    // 0.5 per river, children of a specific leader). All of them sit in the
    // out-of-coverage bucket, where the judge never consults the gold.
    assert!(nonempty >= 42, "only {nonempty}/55 golds resolve at full scale");
    // Every in-coverage (answerable) question's gold must resolve; spot-check
    // the headline ones.
    for text in [
        "Which book is written by Orhan Pamuk?",
        "How tall is Michael Jordan?",
        "Where did Abraham Lincoln die?",
        "Who is the wife of Barack Obama?",
        "What is the capital of Turkey?",
    ] {
        let q = questions.iter().find(|q| q.text == text).unwrap();
        assert!(!q.gold_answers(kb).is_empty(), "{text} gold is empty");
    }
}

#[test]
fn stats_are_plausible_at_scale() {
    let kb = kb();
    let stats = KbStats::compute(kb);
    assert!(stats.entities > 1000);
    assert!(stats.ambiguous_labels >= 2);
    // Writers dominate creative classes; cities dominate places.
    let count = |c: &str| {
        stats
            .instances_per_class
            .iter()
            .find(|(n, _)| n == c)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    };
    assert!(count("City") > 50);
    assert!(count("Writer") >= 60);
    assert!(KbStats::instances_under(kb, "Person") > 300);
}

#[test]
fn page_link_graph_is_substantial() {
    let kb = kb();
    let stats = KbStats::compute(kb);
    assert!(stats.degree_max >= 20, "hub degree {}", stats.degree_max);
    // The famous athlete must be the Michael Jordan hub.
    let jordans = kb.entities_with_label("Michael Jordan");
    let athlete = jordans.iter().find(|i| kb.is_instance_of(i, "Athlete")).unwrap();
    assert!(kb.page_degree(athlete) >= 10);
}
