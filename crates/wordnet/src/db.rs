//! Lexical database structures and similarity metrics.
//!
//! A WordNet-style database: synsets (sets of synonymous words) arranged in a
//! hypernym DAG per part of speech, with corpus counts from which information
//! content is derived. Implements the two metrics the paper uses to build its
//! similar-property list (§2.2.1):
//!
//! - **Lin**: `2·IC(lcs) / (IC(a) + IC(b))` with `IC(s) = −ln p(s)` and
//!   `p(s)` the cumulative corpus probability of the synset and its
//!   descendants (Resnik-style information content);
//! - **Wu–Palmer**: `2·depth(lcs) / (depth(a) + depth(b))` with depth counted
//!   from the per-POS virtual root (root depth = 1).

use relpat_obs::fx::FxHashMap;

/// Part of speech of a synset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WnPos {
    Noun,
    Verb,
    Adjective,
}

/// Index of a synset within a [`WordNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SynsetId(pub u32);

/// A set of synonymous words with hypernym links.
#[derive(Debug, Clone)]
pub struct Synset {
    pub words: Vec<String>,
    pub pos: WnPos,
    pub hypernyms: Vec<SynsetId>,
    /// Raw corpus count of this sense (not cumulative).
    pub count: u64,
}

/// The lexical database.
#[derive(Debug)]
pub struct WordNet {
    synsets: Vec<Synset>,
    /// word (lower) + pos → synsets containing it.
    index: FxHashMap<(String, WnPos), Vec<SynsetId>>,
    /// Cumulative counts (own + all descendants), computed at build time.
    cumulative: Vec<u64>,
    /// Depth from the per-POS virtual root (root synsets have depth 1).
    depth: Vec<u32>,
    /// Total cumulative count per POS (the virtual root's probability mass).
    totals: FxHashMap<WnPos, u64>,
    /// adjective → attribute noun ("tall" → "height").
    attributes: FxHashMap<String, String>,
}

/// Incremental builder; synsets must be added parents-before-children.
#[derive(Debug, Default)]
pub struct WordNetBuilder {
    synsets: Vec<Synset>,
    by_name: FxHashMap<(String, WnPos), SynsetId>,
    attributes: FxHashMap<String, String>,
}

impl WordNetBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a synset. `hypernyms` name the *first word* of previously added
    /// synsets of the same POS. Panics on a dangling hypernym name: the
    /// embedded database is static data, so that is a programming error.
    pub fn synset(
        &mut self,
        words: &[&str],
        pos: WnPos,
        hypernyms: &[&str],
        count: u64,
    ) -> SynsetId {
        let id = SynsetId(self.synsets.len() as u32);
        let hyper_ids: Vec<SynsetId> = hypernyms
            .iter()
            .map(|h| {
                *self
                    .by_name
                    .get(&(h.to_string(), pos))
                    .unwrap_or_else(|| panic!("dangling hypernym '{h}' ({pos:?})"))
            })
            .collect();
        self.synsets.push(Synset {
            words: words.iter().map(|w| w.to_string()).collect(),
            pos,
            hypernyms: hyper_ids,
            count,
        });
        // The head word names the synset for later hypernym references; do
        // not overwrite an existing sense (first sense stays addressable).
        self.by_name.entry((words[0].to_string(), pos)).or_insert(id);
        id
    }

    /// Registers an adjective → attribute-noun mapping (`tall` → `height`).
    pub fn attribute(&mut self, adjective: &str, noun: &str) {
        self.attributes.insert(adjective.to_string(), noun.to_string());
    }

    pub fn build(self) -> WordNet {
        let n = self.synsets.len();
        let mut index: FxHashMap<(String, WnPos), Vec<SynsetId>> = FxHashMap::default();
        for (i, s) in self.synsets.iter().enumerate() {
            for w in &s.words {
                index
                    .entry((w.clone(), s.pos))
                    .or_default()
                    .push(SynsetId(i as u32));
            }
        }

        // Cumulative counts: children were added after parents, so walking
        // in reverse id order propagates each synset's mass to its
        // hypernyms before those are themselves consumed.
        let mut cumulative: Vec<u64> = self.synsets.iter().map(|s| s.count).collect();
        for i in (0..n).rev() {
            let mass = cumulative[i];
            for h in self.synsets[i].hypernyms.clone() {
                cumulative[h.0 as usize] += mass;
            }
        }

        // Depths: parents-first order makes a single forward pass exact.
        let mut depth = vec![0u32; n];
        for i in 0..n {
            let d = self.synsets[i]
                .hypernyms
                .iter()
                .map(|h| depth[h.0 as usize])
                .max()
                .unwrap_or(0);
            depth[i] = d + 1;
        }

        let mut totals: FxHashMap<WnPos, u64> = FxHashMap::default();
        for (i, s) in self.synsets.iter().enumerate() {
            if s.hypernyms.is_empty() {
                *totals.entry(s.pos).or_insert(0) += cumulative[i];
            }
        }

        WordNet {
            synsets: self.synsets,
            index,
            cumulative,
            depth,
            totals,
            attributes: self.attributes,
        }
    }
}

impl WordNet {
    /// Number of synsets.
    pub fn len(&self) -> usize {
        self.synsets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.synsets.is_empty()
    }

    /// Synsets containing a word.
    pub fn synsets_of(&self, word: &str, pos: WnPos) -> &[SynsetId] {
        self.index
            .get(&(word.to_lowercase(), pos))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The synset behind an id.
    pub fn synset(&self, id: SynsetId) -> &Synset {
        &self.synsets[id.0 as usize]
    }

    /// Synonyms of a word: all words sharing any of its synsets.
    pub fn synonyms(&self, word: &str, pos: WnPos) -> Vec<&str> {
        let lower = word.to_lowercase();
        let mut out: Vec<&str> = Vec::new();
        for &sid in self.synsets_of(&lower, pos) {
            for w in &self.synsets[sid.0 as usize].words {
                if w != &lower && !out.contains(&w.as_str()) {
                    out.push(w);
                }
            }
        }
        out
    }

    /// Information content of a synset: `−ln(cumulative/total)`.
    pub fn information_content(&self, id: SynsetId) -> f64 {
        let s = &self.synsets[id.0 as usize];
        let total = *self.totals.get(&s.pos).unwrap_or(&1) as f64;
        let cum = self.cumulative[id.0 as usize].max(1) as f64;
        -(cum / total).ln()
    }

    /// All ancestors of a synset (inclusive).
    fn ancestors(&self, id: SynsetId) -> Vec<SynsetId> {
        let mut out = vec![id];
        let mut stack = vec![id];
        while let Some(s) = stack.pop() {
            for &h in &self.synsets[s.0 as usize].hypernyms {
                if !out.contains(&h) {
                    out.push(h);
                    stack.push(h);
                }
            }
        }
        out
    }

    /// Least common subsumer by maximum information content.
    pub fn lcs(&self, a: SynsetId, b: SynsetId) -> Option<SynsetId> {
        let anc_a = self.ancestors(a);
        let anc_b = self.ancestors(b);
        anc_a
            .into_iter()
            .filter(|x| anc_b.contains(x))
            .max_by(|x, y| {
                self.information_content(*x)
                    .total_cmp(&self.information_content(*y))
            })
    }

    /// Lin similarity between two synsets.
    pub fn lin_synsets(&self, a: SynsetId, b: SynsetId) -> f64 {
        if a == b {
            return 1.0;
        }
        let Some(lcs) = self.lcs(a, b) else { return 0.0 };
        let ic_a = self.information_content(a);
        let ic_b = self.information_content(b);
        if ic_a + ic_b == 0.0 {
            return 0.0;
        }
        (2.0 * self.information_content(lcs) / (ic_a + ic_b)).clamp(0.0, 1.0)
    }

    /// Wu–Palmer similarity between two synsets.
    pub fn wup_synsets(&self, a: SynsetId, b: SynsetId) -> f64 {
        if a == b {
            return 1.0;
        }
        let Some(lcs) = self.lcs(a, b) else { return 0.0 };
        let da = self.depth[a.0 as usize] as f64;
        let db = self.depth[b.0 as usize] as f64;
        let dl = self.depth[lcs.0 as usize] as f64;
        // +1 on every depth accounts for the virtual per-POS root.
        (2.0 * (dl + 1.0) / ((da + 1.0) + (db + 1.0))).clamp(0.0, 1.0)
    }

    /// Word-level Lin similarity: the maximum over all sense pairs
    /// (the standard word-similarity lifting, also what WordNet::Similarity
    /// does). `None` when either word is unknown.
    pub fn lin(&self, a: &str, b: &str, pos: WnPos) -> Option<f64> {
        self.max_over_senses(a, b, pos, |x, y| self.lin_synsets(x, y))
    }

    /// Word-level Wu–Palmer similarity.
    pub fn wup(&self, a: &str, b: &str, pos: WnPos) -> Option<f64> {
        self.max_over_senses(a, b, pos, |x, y| self.wup_synsets(x, y))
    }

    /// Shortest hypernym-path length between two synsets (edges through the
    /// least common subsumer); `None` when they share no ancestor.
    pub fn path_length(&self, a: SynsetId, b: SynsetId) -> Option<u32> {
        if a == b {
            return Some(0);
        }
        let lcs = self.lcs(a, b)?;
        let up = |from: SynsetId| self.depth(from).saturating_sub(self.depth(lcs));
        Some(up(a) + up(b))
    }

    /// Path similarity `1 / (1 + path_length)` — the third classic
    /// WordNet::Similarity metric, provided for completeness.
    pub fn path(&self, a: &str, b: &str, pos: WnPos) -> Option<f64> {
        self.max_over_senses(a, b, pos, |x, y| {
            self.path_length(x, y)
                .map(|d| 1.0 / (1.0 + d as f64))
                .unwrap_or(0.0)
        })
    }

    fn max_over_senses<F: Fn(SynsetId, SynsetId) -> f64>(
        &self,
        a: &str,
        b: &str,
        pos: WnPos,
        f: F,
    ) -> Option<f64> {
        let sa = self.synsets_of(a, pos);
        let sb = self.synsets_of(b, pos);
        if sa.is_empty() || sb.is_empty() {
            return None;
        }
        let mut best: f64 = 0.0;
        for &x in sa {
            for &y in sb {
                best = best.max(f(x, y));
            }
        }
        Some(best)
    }

    /// The attribute noun of an adjective (`tall` → `height`), as the
    /// paper's JAWS-derived adjective list provides (§2.2.2).
    pub fn attribute_noun(&self, adjective: &str) -> Option<&str> {
        self.attributes.get(&adjective.to_lowercase()).map(String::as_str)
    }

    /// All registered adjective → attribute pairs (for building data-property
    /// candidate lists).
    pub fn attribute_pairs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.attributes.iter().map(|(a, n)| (a.as_str(), n.as_str()))
    }

    /// Depth of a synset from the virtual root.
    pub fn depth(&self, id: SynsetId) -> u32 {
        self.depth[id.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> WordNet {
        let mut b = WordNetBuilder::new();
        b.synset(&["entity"], WnPos::Noun, &[], 100);
        b.synset(&["person"], WnPos::Noun, &["entity"], 50);
        b.synset(&["writer", "author"], WnPos::Noun, &["person"], 10);
        b.synset(&["poet"], WnPos::Noun, &["writer"], 5);
        b.synset(&["place"], WnPos::Noun, &["entity"], 40);
        b.attribute("tall", "height");
        b.build()
    }

    #[test]
    fn synonyms_share_synset() {
        let wn = tiny();
        assert_eq!(wn.synonyms("writer", WnPos::Noun), vec!["author"]);
        assert_eq!(wn.lin("writer", "author", WnPos::Noun), Some(1.0));
        assert_eq!(wn.wup("writer", "author", WnPos::Noun), Some(1.0));
    }

    #[test]
    fn cumulative_counts_accumulate_upward() {
        let wn = tiny();
        let entity = wn.synsets_of("entity", WnPos::Noun)[0];
        // 100 + 50 + 10 + 5 + 40
        assert_eq!(wn.cumulative[entity.0 as usize], 205);
        let writer = wn.synsets_of("writer", WnPos::Noun)[0];
        assert_eq!(wn.cumulative[writer.0 as usize], 15);
    }

    #[test]
    fn ic_decreases_with_generality() {
        let wn = tiny();
        let entity = wn.synsets_of("entity", WnPos::Noun)[0];
        let poet = wn.synsets_of("poet", WnPos::Noun)[0];
        assert!(wn.information_content(entity) < wn.information_content(poet));
        assert_eq!(wn.information_content(entity), 0.0); // root: p = 1
    }

    #[test]
    fn lcs_is_most_specific_common_ancestor() {
        let wn = tiny();
        let poet = wn.synsets_of("poet", WnPos::Noun)[0];
        let writer = wn.synsets_of("writer", WnPos::Noun)[0];
        assert_eq!(wn.lcs(poet, writer), Some(writer));
        let place = wn.synsets_of("place", WnPos::Noun)[0];
        let entity = wn.synsets_of("entity", WnPos::Noun)[0];
        assert_eq!(wn.lcs(poet, place), Some(entity));
    }

    #[test]
    fn closer_pairs_score_higher() {
        let wn = tiny();
        let close = wn.lin("poet", "writer", WnPos::Noun).unwrap();
        let far = wn.lin("poet", "place", WnPos::Noun).unwrap();
        assert!(close > far, "lin: {close} vs {far}");
        let close_w = wn.wup("poet", "writer", WnPos::Noun).unwrap();
        let far_w = wn.wup("poet", "place", WnPos::Noun).unwrap();
        assert!(close_w > far_w, "wup: {close_w} vs {far_w}");
    }

    #[test]
    fn unknown_word_is_none() {
        let wn = tiny();
        assert_eq!(wn.lin("poet", "zzz", WnPos::Noun), None);
        assert_eq!(wn.wup("zzz", "poet", WnPos::Noun), None);
        assert!(wn.synsets_of("poet", WnPos::Verb).is_empty());
    }

    #[test]
    fn attribute_lookup() {
        let wn = tiny();
        assert_eq!(wn.attribute_noun("tall"), Some("height"));
        assert_eq!(wn.attribute_noun("TALL"), Some("height"));
        assert_eq!(wn.attribute_noun("short"), None);
        assert_eq!(wn.attribute_pairs().count(), 1);
    }

    #[test]
    fn depths_count_from_root() {
        let wn = tiny();
        let entity = wn.synsets_of("entity", WnPos::Noun)[0];
        let poet = wn.synsets_of("poet", WnPos::Noun)[0];
        assert_eq!(wn.depth(entity), 1);
        assert_eq!(wn.depth(poet), 4);
    }

    #[test]
    fn path_similarity_tracks_distance() {
        let wn = tiny();
        assert_eq!(wn.path("writer", "author", WnPos::Noun), Some(1.0)); // same synset
        let parent_child = wn.path("poet", "writer", WnPos::Noun).unwrap(); // 1 edge
        assert!((parent_child - 0.5).abs() < 1e-12);
        let across = wn.path("poet", "place", WnPos::Noun).unwrap(); // 3 up + 1 up
        assert!((across - 0.2).abs() < 1e-12);
        assert!(parent_child > across);
        assert_eq!(wn.path("poet", "zzz", WnPos::Noun), None);
    }

    #[test]
    fn path_length_is_symmetric() {
        let wn = tiny();
        let poet = wn.synsets_of("poet", WnPos::Noun)[0];
        let place = wn.synsets_of("place", WnPos::Noun)[0];
        assert_eq!(wn.path_length(poet, place), wn.path_length(place, poet));
        assert_eq!(wn.path_length(poet, poet), Some(0));
    }

    #[test]
    #[should_panic(expected = "dangling hypernym")]
    fn dangling_hypernym_panics() {
        let mut b = WordNetBuilder::new();
        b.synset(&["orphan"], WnPos::Noun, &["ghost"], 1);
    }
}
