//! # relpat-wordnet — mini WordNet with Lin and Wu–Palmer similarity
//!
//! A self-contained stand-in for WordNet + WordNet::Similarity + JAWS as the
//! paper uses them (§2.2.1–2.2.2): synsets in a hypernym DAG with corpus
//! counts, the **Lin** and **Wu–Palmer** similarity metrics, and the
//! adjective → attribute-noun table (`tall` → `height`).
//!
//! ```
//! use relpat_wordnet::{embedded, WnPos};
//!
//! let wn = embedded();
//! // The paper's example: dbont:writer has similar meaning to dbont:author.
//! assert_eq!(wn.lin("writer", "author", WnPos::Noun), Some(1.0));
//! assert_eq!(wn.attribute_noun("tall"), Some("height"));
//! ```

mod data;
mod db;

pub use data::{derived_noun, embedded};
pub use db::{Synset, SynsetId, WnPos, WordNet, WordNetBuilder};
