//! The embedded lexical database.
//!
//! A curated WordNet fragment covering the DBpedia-ontology vocabulary the
//! question-answering pipeline touches: enough of the noun, verb and
//! adjective hierarchies that Lin / Wu–Palmer scores over property names are
//! meaningful. Counts are stylized corpus frequencies: generic concepts get
//! large masses (low information content), leaves get small ones.

use crate::db::{WnPos, WordNet, WordNetBuilder};
use std::sync::OnceLock;

/// The embedded database (built once, shared).
pub fn embedded() -> &'static WordNet {
    static DB: OnceLock<WordNet> = OnceLock::new();
    DB.get_or_init(build)
}

fn build() -> WordNet {
    let mut b = WordNetBuilder::new();
    nouns(&mut b);
    verbs(&mut b);
    adjectives(&mut b);
    b.build()
}

fn nouns(b: &mut WordNetBuilder) {
    use WnPos::Noun as N;
    // ---- upper ontology -------------------------------------------------
    b.synset(&["entity"], N, &[], 2000);
    b.synset(&["physical_entity"], N, &["entity"], 800);
    b.synset(&["abstraction"], N, &["entity"], 800);
    b.synset(&["object"], N, &["physical_entity"], 500);
    b.synset(&["living_thing"], N, &["physical_entity"], 400);
    b.synset(&["group"], N, &["entity"], 300);

    // ---- places ----------------------------------------------------------
    b.synset(&["location", "place"], N, &["object"], 300);
    b.synset(&["region"], N, &["location"], 150);
    b.synset(&["country", "nation", "state"], N, &["region"], 60);
    b.synset(&["city", "town"], N, &["region"], 60);
    b.synset(&["capital"], N, &["city"], 20);
    b.synset(&["continent"], N, &["region"], 10);
    b.synset(&["island"], N, &["region"], 10);
    b.synset(&["mountain", "mount"], N, &["object"], 15);
    b.synset(&["body_of_water"], N, &["object"], 40);
    b.synset(&["river"], N, &["body_of_water"], 15);
    b.synset(&["lake"], N, &["body_of_water"], 15);
    b.synset(&["sea", "ocean"], N, &["body_of_water"], 10);
    b.synset(&["desert"], N, &["region"], 5);

    // ---- artifacts and works ----------------------------------------------
    b.synset(&["artifact"], N, &["object"], 250);
    b.synset(&["creation"], N, &["artifact"], 150);
    b.synset(&["work", "piece"], N, &["creation"], 100);
    b.synset(&["book", "volume"], N, &["work"], 30);
    b.synset(&["novel"], N, &["book"], 10);
    b.synset(&["film", "movie", "picture"], N, &["work"], 30);
    b.synset(&["album", "record"], N, &["work"], 15);
    b.synset(&["song", "track"], N, &["work"], 15);
    b.synset(&["painting", "canvas"], N, &["work"], 10);
    b.synset(&["game"], N, &["creation"], 15);
    b.synset(&["building", "edifice"], N, &["artifact"], 60);
    b.synset(&["museum"], N, &["building"], 10);
    b.synset(&["stadium"], N, &["building"], 10);
    b.synset(&["bridge"], N, &["artifact"], 10);
    b.synset(&["tower"], N, &["building"], 10);
    b.synset(&["castle", "palace"], N, &["building"], 10);
    b.synset(&["church", "cathedral"], N, &["building"], 10);
    b.synset(&["airport"], N, &["building"], 8);
    b.synset(&["magazine", "newspaper"], N, &["work"], 10);
    b.synset(&["website", "site"], N, &["creation"], 10);

    // ---- people -----------------------------------------------------------
    b.synset(&["organism"], N, &["living_thing"], 300);
    b.synset(&["person", "individual", "human"], N, &["organism"], 250);
    b.synset(&["creator"], N, &["person"], 90);
    b.synset(&["writer", "author"], N, &["creator"], 25);
    b.synset(&["poet"], N, &["writer"], 8);
    b.synset(&["novelist"], N, &["writer"], 8);
    b.synset(&["artist"], N, &["creator"], 30);
    b.synset(&["painter"], N, &["artist"], 8);
    b.synset(&["musician"], N, &["artist"], 15);
    b.synset(&["composer"], N, &["musician"], 6);
    b.synset(&["singer", "vocalist"], N, &["musician"], 8);
    b.synset(&["director", "filmmaker"], N, &["creator"], 20);
    b.synset(&["producer"], N, &["creator"], 10);
    b.synset(&["architect", "designer"], N, &["creator"], 10);
    b.synset(&["inventor"], N, &["creator"], 8);
    b.synset(&["founder", "beginner"], N, &["creator"], 10);
    b.synset(&["developer"], N, &["creator"], 8);
    b.synset(&["leader"], N, &["person"], 60);
    b.synset(&["president"], N, &["leader"], 15);
    b.synset(&["mayor"], N, &["leader"], 10);
    b.synset(&["monarch", "king", "queen"], N, &["leader"], 12);
    b.synset(&["emperor"], N, &["monarch"], 5);
    b.synset(&["chancellor"], N, &["leader"], 5);
    b.synset(&["minister"], N, &["leader"], 8);
    b.synset(&["governor"], N, &["leader"], 5);
    b.synset(&["spouse", "partner", "mate"], N, &["person"], 25);
    b.synset(&["wife"], N, &["spouse"], 10);
    b.synset(&["husband"], N, &["spouse"], 10);
    b.synset(&["relative"], N, &["person"], 40);
    b.synset(&["child", "kid"], N, &["relative"], 15);
    b.synset(&["daughter"], N, &["child"], 6);
    b.synset(&["son"], N, &["child"], 6);
    b.synset(&["parent"], N, &["relative"], 15);
    b.synset(&["mother"], N, &["parent"], 6);
    b.synset(&["father"], N, &["parent"], 6);
    b.synset(&["worker"], N, &["person"], 60);
    b.synset(&["actor", "actress", "player_thespian"], N, &["worker"], 15);
    b.synset(&["player"], N, &["worker"], 15);
    b.synset(&["scientist"], N, &["worker"], 20);
    b.synset(&["physicist"], N, &["scientist"], 6);
    b.synset(&["chemist"], N, &["scientist"], 6);
    b.synset(&["engineer"], N, &["worker"], 10);
    b.synset(&["philosopher"], N, &["person"], 8);
    b.synset(&["astronaut"], N, &["worker"], 5);
    b.synset(&["owner", "proprietor"], N, &["person"], 10);
    b.synset(&["inhabitant", "resident", "dweller"], N, &["person"], 15);
    b.synset(&["employee"], N, &["worker"], 15);

    // ---- organizations ------------------------------------------------------
    b.synset(&["organization", "organisation"], N, &["group"], 120);
    b.synset(&["company", "firm", "corporation"], N, &["organization"], 40);
    b.synset(&["university", "college"], N, &["organization"], 20);
    b.synset(&["band", "ensemble"], N, &["organization"], 15);
    b.synset(&["team", "squad"], N, &["organization"], 15);
    b.synset(&["party"], N, &["organization"], 15);
    b.synset(&["school"], N, &["organization"], 15);
    b.synset(&["airline"], N, &["company"], 8);

    // ---- attributes ----------------------------------------------------------
    b.synset(&["attribute"], N, &["abstraction"], 300);
    b.synset(&["property", "dimension"], N, &["attribute"], 150);
    b.synset(&["height", "stature"], N, &["property"], 20);
    b.synset(&["length"], N, &["property"], 15);
    b.synset(&["depth"], N, &["property"], 12);
    b.synset(&["width"], N, &["property"], 10);
    b.synset(&["elevation", "altitude"], N, &["height"], 8);
    b.synset(&["magnitude"], N, &["attribute"], 100);
    b.synset(&["size"], N, &["magnitude"], 40);
    b.synset(&["area", "expanse"], N, &["size"], 15);
    b.synset(&["amount", "quantity"], N, &["magnitude"], 40);
    b.synset(&["population"], N, &["amount"], 15);
    b.synset(&["number", "count"], N, &["amount"], 20);
    b.synset(&["age"], N, &["property"], 15);
    b.synset(&["weight"], N, &["property"], 12);

    // ---- events, time, communication ------------------------------------------
    b.synset(&["event"], N, &["abstraction"], 250);
    b.synset(&["birth", "nativity"], N, &["event"], 25);
    b.synset(&["death", "decease"], N, &["event"], 25);
    b.synset(&["marriage", "wedding"], N, &["event"], 15);
    b.synset(&["war"], N, &["event"], 20);
    b.synset(&["battle"], N, &["war"], 8);
    b.synset(&["festival"], N, &["event"], 8);
    b.synset(&["award", "prize"], N, &["event"], 12);
    b.synset(&["time_period"], N, &["abstraction"], 150);
    b.synset(&["date"], N, &["time_period"], 30);
    b.synset(&["year"], N, &["time_period"], 30);
    b.synset(&["birthday"], N, &["date"], 8);
    b.synset(&["communication"], N, &["abstraction"], 200);
    b.synset(&["language", "tongue"], N, &["communication"], 25);
    b.synset(&["name"], N, &["communication"], 30);
    b.synset(&["title"], N, &["name"], 10);
    b.synset(&["abbreviation"], N, &["name"], 5);
    b.synset(&["anthem", "hymn"], N, &["communication"], 5);
    b.synset(&["genre", "kind", "type"], N, &["abstraction"], 30);
    b.synset(&["religion", "faith"], N, &["abstraction"], 15);
    b.synset(&["profession", "occupation", "job"], N, &["abstraction"], 20);
    b.synset(&["currency", "money"], N, &["abstraction"], 15);
    b.synset(&["flag"], N, &["artifact"], 8);
    b.synset(&["border", "boundary"], N, &["location"], 15);
    b.synset(&["headquarters", "seat"], N, &["location"], 10);
    b.synset(&["residence", "home"], N, &["location"], 15);
}

fn verbs(b: &mut WordNetBuilder) {
    use WnPos::Verb as V;
    b.synset(&["act"], V, &[], 1500);

    b.synset(&["create", "make"], V, &["act"], 300);
    b.synset(&["write", "author", "compose", "pen"], V, &["create"], 40);
    b.synset(&["produce"], V, &["create"], 40);
    b.synset(&["publish", "release"], V, &["produce"], 15);
    b.synset(&["record"], V, &["produce"], 12);
    b.synset(&["direct"], V, &["create"], 25);
    b.synset(&["invent", "devise"], V, &["create"], 12);
    b.synset(&["design"], V, &["create"], 12);
    b.synset(&["build", "construct"], V, &["create"], 20);
    b.synset(&["found", "establish"], V, &["create"], 20);
    b.synset(&["develop"], V, &["create"], 15);
    b.synset(&["paint"], V, &["create"], 10);
    b.synset(&["draw"], V, &["create"], 10);

    b.synset(&["change"], V, &["act"], 250);
    b.synset(&["die", "decease", "perish"], V, &["change"], 30);
    b.synset(&["bear", "birth", "deliver"], V, &["change"], 30);
    b.synset(&["begin", "start"], V, &["change"], 25);
    b.synset(&["end", "finish"], V, &["change"], 25);
    b.synset(&["grow"], V, &["change"], 15);

    b.synset(&["be", "exist"], V, &["act"], 250);
    b.synset(&["live", "reside", "dwell", "inhabit"], V, &["be"], 40);
    b.synset(&["locate", "situate"], V, &["be"], 25);

    b.synset(&["connect", "link"], V, &["act"], 120);
    b.synset(&["border", "adjoin"], V, &["connect"], 15);
    b.synset(&["marry", "wed", "espouse"], V, &["connect"], 20);
    b.synset(&["join"], V, &["connect"], 15);
    b.synset(&["cross"], V, &["connect"], 10);

    b.synset(&["compete"], V, &["act"], 100);
    b.synset(&["win"], V, &["compete"], 20);
    b.synset(&["play"], V, &["compete"], 25);
    b.synset(&["star", "feature"], V, &["act"], 15);

    b.synset(&["move"], V, &["act"], 150);
    b.synset(&["flow", "run"], V, &["move"], 20);
    b.synset(&["fly"], V, &["move"], 12);

    b.synset(&["communicate"], V, &["act"], 150);
    b.synset(&["speak", "talk"], V, &["communicate"], 25);
    b.synset(&["sing"], V, &["communicate"], 12);
    b.synset(&["say", "tell"], V, &["communicate"], 25);

    b.synset(&["have", "own", "possess"], V, &["act"], 120);
    b.synset(&["control"], V, &["act"], 100);
    b.synset(&["lead", "head"], V, &["control"], 25);
    b.synset(&["govern", "rule"], V, &["control"], 20);
    b.synset(&["work"], V, &["act"], 40);
    b.synset(&["study"], V, &["act"], 20);
    b.synset(&["give"], V, &["act"], 30);
    b.synset(&["take"], V, &["act"], 30);
}

fn adjectives(b: &mut WordNetBuilder) {
    use WnPos::Adjective as A;
    // A flat adjective layer; similarity between adjectives is not needed,
    // only their attribute mapping — but synsets keep synonyms addressable.
    b.synset(&["tall", "high"], A, &[], 20);
    b.synset(&["long"], A, &[], 15);
    b.synset(&["deep"], A, &[], 10);
    b.synset(&["wide", "broad"], A, &[], 10);
    b.synset(&["large", "big"], A, &[], 25);
    b.synset(&["small", "little"], A, &[], 20);
    b.synset(&["old"], A, &[], 20);
    b.synset(&["young"], A, &[], 15);
    b.synset(&["heavy"], A, &[], 10);
    b.synset(&["populous"], A, &[], 5);
    b.synset(&["alive", "living"], A, &[], 10);
    b.synset(&["dead", "deceased"], A, &[], 10);

    // JAWS-style adjective → attribute-noun pairs (paper §2.2.2:
    // "tall" → dbont:height).
    b.attribute("tall", "height");
    b.attribute("high", "height");
    b.attribute("long", "length");
    b.attribute("deep", "depth");
    b.attribute("wide", "width");
    b.attribute("large", "area");
    b.attribute("big", "area");
    b.attribute("small", "size");
    b.attribute("old", "age");
    b.attribute("young", "age");
    b.attribute("heavy", "weight");
    b.attribute("populous", "population");

    // Noun attribute aliases used by data-property matching ("population of"
    // → populationTotal is handled by string similarity; these cover the
    // adjective path only).
}

/// Derivationally related event noun of a verb (`bear` → `birth`,
/// `die` → `death`) — WordNet's derivational links, used to map verbs onto
/// data properties whose labels contain the event noun (`birth date`).
pub fn derived_noun(verb_lemma: &str) -> Option<&'static str> {
    Some(match verb_lemma {
        "bear" => "birth",
        "die" => "death",
        "marry" => "marriage",
        "found" | "establish" => "founding",
        "release" | "publish" => "release",
        "begin" | "start" => "beginning",
        "end" => "ending",
        "grow" => "growth",
        "live" | "reside" => "residence",
        "elect" => "election",
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::WnPos;

    #[test]
    fn embedded_database_builds() {
        let wn = embedded();
        assert!(wn.len() > 150, "expected a substantial database, got {}", wn.len());
    }

    #[test]
    fn writer_author_are_synonyms() {
        let wn = embedded();
        assert_eq!(wn.lin("writer", "author", WnPos::Noun), Some(1.0));
        assert_eq!(wn.wup("writer", "author", WnPos::Noun), Some(1.0));
    }

    #[test]
    fn paper_thresholds_hold_for_intended_merges() {
        // The paper merges property pairs when Lin ≥ 0.75 AND WuP ≥ 0.85.
        let wn = embedded();
        for (a, b) in [
            ("writer", "author"),
            ("film", "movie"),
            ("location", "place"),
            ("spouse", "partner"),
        ] {
            assert!(wn.lin(a, b, WnPos::Noun).unwrap() >= 0.75, "{a}/{b} lin");
            assert!(wn.wup(a, b, WnPos::Noun).unwrap() >= 0.85, "{a}/{b} wup");
        }
        for (a, b) in [("live", "reside"), ("found", "establish"), ("die", "decease")] {
            assert!(wn.lin(a, b, WnPos::Verb).unwrap() >= 0.75, "{a}/{b} lin");
            assert!(wn.wup(a, b, WnPos::Verb).unwrap() >= 0.85, "{a}/{b} wup");
        }
    }

    #[test]
    fn paper_thresholds_reject_unintended_merges() {
        let wn = embedded();
        for (a, b) in [
            ("writer", "director"),
            ("birth", "death"),
            ("height", "population"),
            ("city", "person"),
        ] {
            let lin = wn.lin(a, b, WnPos::Noun).unwrap();
            let wup = wn.wup(a, b, WnPos::Noun).unwrap();
            assert!(
                lin < 0.75 || wup < 0.85,
                "{a}/{b} unexpectedly similar: lin={lin:.2} wup={wup:.2}"
            );
        }
        let lin = wn.lin("write", "die", WnPos::Verb).unwrap();
        assert!(lin < 0.75, "write/die lin={lin}");
    }

    #[test]
    fn adjective_attributes_match_paper_example() {
        let wn = embedded();
        assert_eq!(wn.attribute_noun("tall"), Some("height"));
        assert_eq!(wn.attribute_noun("populous"), Some("population"));
        assert!(wn.attribute_pairs().count() >= 10);
    }

    #[test]
    fn hierarchy_sanity_specific_beats_generic() {
        let wn = embedded();
        let wife_spouse = wn.wup("wife", "spouse", WnPos::Noun).unwrap();
        let wife_person = wn.wup("wife", "person", WnPos::Noun).unwrap();
        assert!(wife_spouse > wife_person);
    }

    #[test]
    fn verbs_and_nouns_are_separate_spaces() {
        let wn = embedded();
        // "author" exists in both spaces; they must not interfere.
        assert!(!wn.synsets_of("author", WnPos::Noun).is_empty());
        assert!(!wn.synsets_of("author", WnPos::Verb).is_empty());
        assert_eq!(wn.lin("author", "zzz", WnPos::Verb), None);
    }
}
