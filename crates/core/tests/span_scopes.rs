//! Span-scope audit: pins the profiler's view of the pipeline to the
//! pipeline's own trace.
//!
//! Every `span!` in `relpat_qa::pipeline` pushes an interned tag on the
//! profiler's thread stack and pops it on drop. This test turns on the
//! profiler's audit log, answers questions that exit at every stage
//! (answered, no-answer, extraction failure, mapping failure), and checks:
//!
//! - push/pop order is LIFO-well-formed and ends on an empty stack — a
//!   leaked or double-popped guard corrupts every later profile sample;
//! - `qa.total` brackets the whole question;
//! - the direct children of `qa.total`, in push order, are exactly the
//!   stages the response's own trace recorded, in the same order — the
//!   profiler and the trace can never disagree about what ran.

use std::sync::OnceLock;

use relpat_kb::{generate, KbConfig, KnowledgeBase};
use relpat_obs::prof::AuditEvent;
use relpat_obs::profiler;
use relpat_qa::Pipeline;

fn pipeline() -> &'static Pipeline<'static> {
    static KB: OnceLock<KnowledgeBase> = OnceLock::new();
    static P: OnceLock<Pipeline<'static>> = OnceLock::new();
    P.get_or_init(|| Pipeline::new(KB.get_or_init(|| generate(&KbConfig::tiny()))))
}

/// Replays the audit log as a stack; panics on any non-LIFO pop and
/// returns the depth-1 pushes (direct children of the outermost frame).
fn replay(events: &[AuditEvent]) -> Vec<String> {
    let mut stack: Vec<&str> = Vec::new();
    let mut children = Vec::new();
    for e in events {
        if e.push {
            if stack.len() == 1 {
                children.push(e.tag.clone());
            }
            stack.push(&e.tag);
        } else {
            let top = stack.pop().unwrap_or_else(|| {
                panic!("pop of {:?} on an empty stack — guard dropped twice", e.tag)
            });
            assert_eq!(top, e.tag, "non-LIFO pop: popped {:?} while {top:?} was open", e.tag);
        }
    }
    assert!(stack.is_empty(), "spans leaked at question end: {stack:?}");
    children
}

#[test]
fn profiler_stack_matches_trace_stage_order_at_every_exit() {
    let p = pipeline();
    let prof = profiler();
    // Audit needs pushes to happen, and pushes are gated on the sampler
    // being enabled; a slow rate keeps the sampler thread near-idle.
    prof.enable(19);
    prof.set_audit(true);
    let me = format!("{:?}", std::thread::current().id());

    // One question per pipeline exit path. The audited span sequence must
    // match the trace whether the pipeline ran to completion or bailed.
    let questions = [
        "Which books are written by Orhan Pamuk?", // answered
        "Which books are written by Frank Herbert?", // runs all stages
        "Who zorbled the quuxified flibbertigibbet?", // mapping has nothing
        "blue",                                    // extraction failure
        "",                                        // degenerate input
    ];
    let mut exits_seen = std::collections::BTreeSet::new();
    for q in questions {
        prof.take_audit(); // drain anything earlier (other threads too)
        let resp = p.answer(q);
        let events: Vec<AuditEvent> =
            prof.take_audit().into_iter().filter(|e| e.thread == me).collect();
        exits_seen.insert(format!("{:?}", resp.stage));

        assert!(!events.is_empty(), "no audited spans for {q:?}");
        assert_eq!(events.first().map(|e| e.tag.as_str()), Some("qa.total"), "{q:?}");
        let last = events.last().unwrap();
        assert!(
            last.tag == "qa.total" && !last.push,
            "{q:?}: last event must pop qa.total, got {last:?}"
        );

        let children = replay(&events);
        // Depth-1 spans under qa.total, minus the `qa.` prefix, are the
        // trace's stage list — same names, same order, same count.
        let audited: Vec<&str> =
            children.iter().filter_map(|t| t.strip_prefix("qa.")).collect();
        let traced: Vec<&str> =
            resp.trace.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(audited, traced, "{q:?}: profiler and trace disagree on stages");
    }
    // The sweep must actually exercise more than one exit path, or the
    // early-return coverage claim above is hollow.
    assert!(
        exits_seen.len() >= 3,
        "question set collapsed to too few pipeline exits: {exits_seen:?}"
    );

    prof.set_audit(false);
    prof.disable();
}
