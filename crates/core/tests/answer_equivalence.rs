//! Property-style seeded sweep over answer extraction (in-tree RNG,
//! matching the workspace's `proptest` replacement style): sequential,
//! parallel, early-terminated, exhaustive, and cache-warm execution must
//! all select the identical `Answer` over randomized candidate sets —
//! including batches containing failing queries, and batches where every
//! query fails. Early termination and caching change cost, never answers.

use relpat_kb::{generate, KbConfig, KnowledgeBase};
use relpat_obs::Rng;
use relpat_qa::{extract_answer_traced, AnswerConfig, BuiltQuery, ExpectedType};
use std::sync::OnceLock;

fn kb() -> &'static KnowledgeBase {
    static KB: OnceLock<KnowledgeBase> = OnceLock::new();
    KB.get_or_init(|| generate(&KbConfig::tiny()))
}

/// Candidate pool for `SELECT` batches: non-empty, empty, and malformed.
const SELECT_POOL: [&str; 6] = [
    "SELECT ?x { ?x dbont:author res:Orhan_Pamuk }",        // non-empty
    "SELECT ?x { res:Turkey dbont:capital ?x }",            // non-empty
    "SELECT ?x { res:Frank_Herbert dbont:birthPlace ?x }",  // empty
    "SELECT ?x { res:Frank_Herbert dbont:deathPlace ?x }",  // empty
    "SELECT ?x { broken",                                   // parse failure
    "SELECT ?x { ?x rdf:type dbont:Book }",                 // non-empty
];

/// Candidate pool for `ASK` batches: true, false, and malformed.
const ASK_POOL: [&str; 5] = [
    "ASK { res:Snow dbont:author res:Orhan_Pamuk . }",   // true
    "ASK { res:Dune dbont:author res:Orhan_Pamuk . }",   // false
    "ASK { res:Turkey dbont:capital res:Ankara . }",     // true
    "ASK { res:Ankara dbont:capital res:Turkey . }",     // false
    "ASK { also broken",                                 // parse failure
];

/// A randomized, descending-scored candidate batch drawn from `pool`.
fn arb_batch(rng: &mut Rng, pool: &[&str]) -> Vec<BuiltQuery> {
    let n = rng.gen_range(1usize..=12);
    let mut queries: Vec<BuiltQuery> = (0..n)
        .map(|_| BuiltQuery {
            sparql: pool[rng.gen_range(0usize..pool.len())].to_string(),
            score: (rng.gen_range(0u32..1000) as f64) / 10.0,
        })
        .collect();
    queries.sort_by(|a, b| b.score.total_cmp(&a.score));
    queries
}

/// The four execution strategies whose answers must coincide.
fn configs() -> [AnswerConfig; 4] {
    let base = AnswerConfig::default(); // sequential, early termination
    [
        base.clone(),
        AnswerConfig { exhaustive: true, ..base.clone() },
        AnswerConfig { parallel: true, ..base.clone() },
        AnswerConfig { parallel: true, exhaustive: true, ..base },
    ]
}

fn sweep(pool: &[&str], ask: bool, expected: ExpectedType, seed: u64) {
    let kb = kb();
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(seed + case);
        let queries = arb_batch(&mut rng, pool);
        let (reference, ref_stats) =
            extract_answer_traced(kb, expected, ask, &queries, &configs()[1]);
        // Exhaustive mode really executes everything and accounts for it.
        assert_eq!(ref_stats.executed, queries.len() as u64, "case {case}");
        let expected_failed =
            queries.iter().filter(|q| q.sparql.contains("broken")).count() as u64;
        assert_eq!(ref_stats.failed, expected_failed, "case {case}");
        for (ci, config) in configs().iter().enumerate() {
            let (answer, stats) = extract_answer_traced(kb, expected, ask, &queries, config);
            assert_eq!(answer, reference, "case {case} config {ci}: {queries:#?}");
            assert!(stats.executed <= queries.len() as u64, "case {case} config {ci}");
            // No survivor anywhere → nothing can be skipped, by any strategy.
            if reference.is_none() {
                assert_eq!(stats, ref_stats, "case {case} config {ci}");
            }
        }
        // Cache-warm rerun (every query text now cached in the KB): still
        // the identical answer and the identical stats.
        let warm = extract_answer_traced(kb, expected, ask, &queries, &configs()[0]);
        let cold_equivalent = extract_answer_traced(kb, expected, ask, &queries, &configs()[0]);
        assert_eq!(warm, cold_equivalent, "case {case} warm rerun drifted");
        assert_eq!(warm.0, reference, "case {case} warm vs exhaustive");
    }
}

#[test]
fn select_batches_agree_across_strategies() {
    sweep(&SELECT_POOL, false, ExpectedType::Unconstrained, 0x5E1EC7);
}

#[test]
fn select_batches_agree_under_type_checking() {
    // Place-typed: the author/book queries survive execution but die in the
    // type filter, exercising the Survivor/Empty boundary.
    sweep(&SELECT_POOL, false, ExpectedType::Place, 0x7A9E);
}

#[test]
fn ask_batches_agree_across_strategies() {
    sweep(&ASK_POOL, true, ExpectedType::Boolean, 0xA5C0FFEE);
}

#[test]
fn all_failing_batches_report_failures_not_answers() {
    let kb = kb();
    for case in 0..32u64 {
        let mut rng = Rng::seed_from_u64(0xFA11 + case);
        let ask = rng.gen_bool(0.5);
        let n = rng.gen_range(1usize..=8);
        let queries: Vec<BuiltQuery> = (0..n)
            .map(|i| BuiltQuery {
                sparql: format!("{} ?x {{ broken {i}", if ask { "ASK" } else { "SELECT" }),
                score: (n - i) as f64,
            })
            .collect();
        for config in configs() {
            let expected = if ask { ExpectedType::Boolean } else { ExpectedType::Unconstrained };
            let (answer, stats) = extract_answer_traced(kb, expected, ask, &queries, &config);
            assert!(answer.is_none(), "case {case}");
            assert_eq!(stats.executed, n as u64, "case {case}");
            assert_eq!(stats.failed, n as u64, "case {case}");
            assert_eq!(stats.survived, 0, "case {case}");
        }
    }
}
