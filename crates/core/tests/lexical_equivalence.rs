//! Equivalence gate for the lexical candidate index (CI-enforced): with
//! `use_lexical_index` on and off, `entity_pool`, `resolve_entity` and
//! `property_candidates` must return *bit-identical* results — the index
//! only skips entries whose similarity provably cannot reach the threshold.
//!
//! The sweep covers every ontology property name, label, label word and
//! camel constituent, every entity label in the tiny KB, threshold-boundary
//! scores (exactly at `string_sim_threshold` / `entity_sim_threshold`),
//! empty/unicode queries, and a seeded random-string sweep across the
//! threshold regimes (including 0.5, below the bigram-recall guarantee,
//! which exercises the index's full-scan fallback) — same structure that
//! gated PR 3's early-termination change.

use relpat_kb::{generate, split_camel_case, KbConfig, KnowledgeBase};
use relpat_obs::fx::FxHashMap;
use relpat_obs::Rng;
use relpat_patterns::{mine, CorpusConfig, PatternStore};
use relpat_qa::{similar_property_pairs, Mapper, MappingConfig, PredKind};
use relpat_wordnet::embedded;
use std::sync::OnceLock;

struct Fixture {
    kb: KnowledgeBase,
    patterns: PatternStore,
    pairs: FxHashMap<String, Vec<(String, f64)>>,
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let kb = generate(&KbConfig::tiny());
        let mined = mine(&kb, &CorpusConfig::default());
        let pairs = similar_property_pairs(&kb, embedded());
        Fixture { kb, patterns: mined.store, pairs }
    })
}

fn mapper_with(config: MappingConfig) -> Mapper<'static> {
    let f = fixture();
    Mapper { kb: &f.kb, wordnet: embedded(), patterns: &f.patterns, similar_pairs: &f.pairs, config }
}

/// Index-on and index-off mappers sharing every other knob.
fn mapper_pair(config: MappingConfig) -> (Mapper<'static>, Mapper<'static>) {
    (
        mapper_with(MappingConfig { use_lexical_index: true, ..config.clone() }),
        mapper_with(MappingConfig { use_lexical_index: false, ..config }),
    )
}

/// Every lexical form the ontology itself can produce: property names,
/// whole labels, label words and camel-split constituents.
fn ontology_vocabulary(kb: &KnowledgeBase) -> Vec<String> {
    let mut words: Vec<String> = Vec::new();
    for (name, label) in kb
        .ontology
        .object_properties
        .iter()
        .map(|p| (p.name, p.label))
        .chain(kb.ontology.data_properties.iter().map(|p| (p.name, p.label)))
    {
        words.push(name.to_string());
        words.push(label.to_string());
        words.extend(split_camel_case(name));
        words.extend(label.split_whitespace().map(str::to_string));
    }
    words.sort();
    words.dedup();
    words
}

fn assert_equivalent_for_word(on: &Mapper<'_>, off: &Mapper<'_>, word: &str, context: &str) {
    for kind in [PredKind::Verb, PredKind::Noun, PredKind::Adjective] {
        let a = on.property_candidates(word, word, kind);
        let b = off.property_candidates(word, word, kind);
        assert_eq!(a, b, "property candidates diverged for {word:?} ({kind:?}, {context})");
    }
    let a = on.entity_pool(word);
    let b = off.entity_pool(word);
    assert_eq!(a, b, "entity pool diverged for {word:?} ({context})");
    let a = on.resolve_entity(word, &[]);
    let b = off.resolve_entity(word, &[]);
    assert_eq!(a, b, "resolved entity diverged for {word:?} ({context})");
}

#[test]
fn all_ontology_words_map_identically() {
    let (on, off) = mapper_pair(MappingConfig::default());
    for word in ontology_vocabulary(&fixture().kb) {
        assert_equivalent_for_word(&on, &off, &word, "default config");
    }
}

#[test]
fn all_entity_labels_map_identically() {
    let (on, off) = mapper_pair(MappingConfig::default());
    let labels: Vec<String> =
        fixture().kb.labels_iter().map(|(l, _)| l.to_string()).collect();
    for label in labels {
        // The exact label short-circuits the fuzzy path; a mutated copy
        // (drop the middle character) forces it.
        assert_eq!(on.entity_pool(&label), off.entity_pool(&label), "exact {label:?}");
        let chars: Vec<char> = label.chars().collect();
        if chars.len() > 2 {
            let mut fuzzed: String = chars[..chars.len() / 2].iter().collect();
            fuzzed.extend(&chars[chars.len() / 2 + 1..]);
            assert_eq!(
                on.entity_pool(&fuzzed),
                off.entity_pool(&fuzzed),
                "fuzzed {fuzzed:?} (from {label:?})"
            );
        }
    }
}

#[test]
fn threshold_boundary_scores_agree() {
    // lcs_score("write", "writer") = 5/6 and ("written","writer") = 5/7:
    // pin the thresholds exactly there so `s >= threshold` sits on the
    // boundary, the regime where a sloppy pruning bound would diverge.
    for threshold in [5.0 / 6.0, 5.0 / 7.0, 0.95, 0.9, 1.0] {
        let (on, off) = mapper_pair(MappingConfig {
            string_sim_threshold: threshold,
            entity_sim_threshold: threshold,
            ..MappingConfig::default()
        });
        for word in ["write", "written", "writer", "height", "population", "orhan pamuk"] {
            assert_equivalent_for_word(&on, &off, word, &format!("threshold {threshold}"));
        }
    }
}

#[test]
fn empty_and_unicode_queries_agree() {
    let (on, off) = mapper_pair(MappingConfig::default());
    for word in ["", " ", "é", "naïveté", "höhe", "北京", "a", "-", "🦀"] {
        assert_equivalent_for_word(&on, &off, word, "edge-case query");
    }
}

#[test]
fn random_sweep_agrees_across_threshold_regimes() {
    // Random ASCII-ish strings at thresholds covering all three index
    // regimes: 0.5 (below 2/3 → full-scan fallback), 0.7 (default, bigram
    // guarantee active), 0.9/0.95 (short bound, heavy pruning).
    let alphabet: Vec<char> = "abcdefghilmnoprstuwé ".chars().collect();
    for threshold in [0.5, 0.7, 0.9, 0.95] {
        let (on, off) = mapper_pair(MappingConfig {
            string_sim_threshold: threshold,
            entity_sim_threshold: threshold,
            ..MappingConfig::default()
        });
        let mut rng = Rng::seed_from_u64(0x1E81CA1 ^ threshold.to_bits());
        for case in 0..150 {
            let len = rng.gen_range(0usize..16);
            let word: String =
                (0..len).map(|_| alphabet[rng.gen_range(0usize..alphabet.len())]).collect();
            assert_equivalent_for_word(
                &on,
                &off,
                &word,
                &format!("random case {case} @ {threshold}"),
            );
        }
    }
}

#[test]
fn full_question_mapping_is_identical() {
    let (on, off) = mapper_pair(MappingConfig::default());
    for question in [
        "Which book is written by Orhan Pamuk?",
        "Who is the wife of Barack Obama?",
        "How tall is Michael Jordan?",
        "In which city did John F. Kennedy die?",
        "Which books by Kerouac were published by Viking Press?",
    ] {
        let Some(analysis) = relpat_qa::extract(&relpat_nlp::parse_sentence(question)) else {
            continue;
        };
        assert_eq!(on.map(&analysis), off.map(&analysis), "mapping diverged for {question:?}");
    }
}

#[test]
fn index_prunes_but_scores_everything_it_keeps() {
    // Sanity on the stats contract: probed = pruned + kept-units, and the
    // fuzzy sweep above means at least something was probed and pruned.
    let f = fixture();
    let before = f.kb.lexical().lookup_stats();
    let on = mapper_with(MappingConfig::default());
    on.entity_pool("orhan pamukk");
    on.property_candidates("written", "write", PredKind::Verb);
    let delta = f.kb.lexical().lookup_stats().delta_since(&before);
    assert!(delta.probed > 0, "{delta:?}");
    assert!(delta.scored > 0, "{delta:?}");
    assert!(delta.probed >= delta.pruned, "{delta:?}");
}
