//! # relpat-qa — semantic question answering with relational patterns
//!
//! The paper's contribution (Hakimov et al., EDBT 2013 workshops): translate
//! natural-language questions into SPARQL over a DBpedia-style knowledge
//! base using the question's dependency graph and relational patterns.
//!
//! The pipeline has the paper's three steps:
//!
//! 1. **Triple pattern extraction** ([`extract`], §2.1) — candidate RDF
//!    triples from the dependency tree + POS tags;
//! 2. **Entity & property extraction** ([`Mapper`], §2.2) — string
//!    similarity (greatest common subsequence), WordNet similar-property
//!    pairs and adjective lists, relational patterns with frequencies, and
//!    page-link-centrality entity disambiguation;
//! 3. **Answer extraction** ([`extract_answer`], §2.3) — candidate query
//!    execution, frequency-product ranking, expected-type checking (Table 1).
//!
//! ```no_run
//! use relpat_kb::{generate, KbConfig};
//! use relpat_qa::Pipeline;
//!
//! let kb = generate(&KbConfig::default());
//! let qa = Pipeline::new(&kb);
//! let response = qa.answer("Which book is written by Orhan Pamuk?");
//! assert!(response.is_answered());
//! ```

mod answer;
mod baseline;
mod extensions;
mod mapping;
mod pipeline;
mod queries;
mod similarity;
mod triples;

pub use answer::{
    extract_answer, extract_answer_traced, type_check, Answer, AnswerConfig, AnswerValue,
    ExecStats,
};
pub use baseline::{BaselineAnswer, KeywordBaseline, TemplateBaseline};
pub use extensions::ExtensionConfig;
pub use mapping::{
    similar_property_pairs, CandidateSource, MappedQuestion, MappedSlot, MappedTriple, Mapper,
    MappingConfig, PropertyCandidate, ResolvedEntity,
};
pub use pipeline::{Pipeline, PipelineConfig, Response, Stage};
pub use queries::{build_queries, build_queries_planned, BuiltQuery, PlanStats, PlannerStrategy};
pub use similarity::{
    lcs_len, lcs_len_with, lcs_score, lcs_score_pre, property_name_score,
    property_name_score_pre, split_camel_case, LcsScratch,
};
pub use triples::{
    extract, ExpectedType, PatternTriple, PredKind, PredicateSlot, QuestionAnalysis,
    QuestionKind, SlotTerm,
};
