//! String similarity for property and entity matching (paper §2.2.1).
//!
//! The paper scores candidates by the *greatest common subsequence*: the
//! score is the subsequence length normalized by word length, which rejects
//! accidental containments like `river` ⊂ `taxiDriver` (their example). We
//! normalize by the length of the longer string, which penalizes both
//! one-sided containments symmetrically.
//!
//! The DP runs allocation-free on a caller-provided [`LcsScratch`]: ASCII
//! inputs are compared byte-wise directly on the string slices; non-ASCII
//! inputs decode into a reusable char buffer. The `_pre` variants take an
//! already-lowercased query word so candidate loops normalize once per
//! lookup instead of once per comparison — `to_lowercase()` is idempotent,
//! so they score identically to the plain entry points.

pub use relpat_kb::split_camel_case;

/// Reusable DP scratch for [`lcs_len_with`]: two `u32` rows plus a char
/// buffer for the non-ASCII path. One instance per lookup loop; the rows
/// grow to the longest candidate seen and are then reused.
#[derive(Debug, Default)]
pub struct LcsScratch {
    prev: Vec<u32>,
    cur: Vec<u32>,
    chars_a: Vec<char>,
    chars_b: Vec<char>,
}

fn lcs_dp<T: Copy + PartialEq>(a: &[T], b: &[T], scratch: &mut LcsScratch) -> usize {
    scratch.prev.clear();
    scratch.prev.resize(b.len() + 1, 0);
    scratch.cur.clear();
    scratch.cur.resize(b.len() + 1, 0);
    let (prev, cur) = (&mut scratch.prev, &mut scratch.cur);
    for &ca in a {
        for (j, &cb) in b.iter().enumerate() {
            cur[j + 1] = if ca == cb {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(prev, cur);
        cur[0] = 0;
    }
    prev[b.len()] as usize
}

/// Length of the longest common subsequence of two strings, reusing
/// `scratch` across calls.
pub fn lcs_len_with(a: &str, b: &str, scratch: &mut LcsScratch) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    if a.is_ascii() && b.is_ascii() {
        return lcs_dp(a.as_bytes(), b.as_bytes(), scratch);
    }
    scratch.chars_a.clear();
    scratch.chars_a.extend(a.chars());
    scratch.chars_b.clear();
    scratch.chars_b.extend(b.chars());
    let (ca, cb) = (std::mem::take(&mut scratch.chars_a), std::mem::take(&mut scratch.chars_b));
    let len = lcs_dp(&ca, &cb, scratch);
    scratch.chars_a = ca;
    scratch.chars_b = cb;
    len
}

/// Length of the longest common subsequence of two ASCII-lowered strings.
pub fn lcs_len(a: &str, b: &str) -> usize {
    lcs_len_with(a, b, &mut LcsScratch::default())
}

/// [`lcs_score`] over already-lowercased inputs with reusable scratch.
pub fn lcs_score_pre(a_lower: &str, b_lower: &str, scratch: &mut LcsScratch) -> f64 {
    let max = a_lower.chars().count().max(b_lower.chars().count());
    if max == 0 {
        return 0.0;
    }
    lcs_len_with(a_lower, b_lower, scratch) as f64 / max as f64
}

/// Similarity score in `[0, 1]`: `lcs / max(|a|, |b|)`, case-insensitive.
///
/// `taxiDriver` vs `river`: lcs = 5, max = 10 → 0.5 (rejected at any
/// reasonable threshold), while `written`→`writer` scores 5/7 ≈ 0.71 and
/// `write`→`writer` 5/6 ≈ 0.83.
pub fn lcs_score(a: &str, b: &str) -> f64 {
    let a = a.to_lowercase();
    let b = b.to_lowercase();
    lcs_score_pre(&a, &b, &mut LcsScratch::default())
}

/// [`property_name_score`] over an already-lowercased word with reusable
/// scratch — the inner-loop form used by the mapper's candidate scans.
pub fn property_name_score_pre(
    word_lower: &str,
    local_name: &str,
    label: &str,
    scratch: &mut LcsScratch,
) -> f64 {
    let name_lower = local_name.to_lowercase();
    let mut best = lcs_score_pre(word_lower, &name_lower, scratch);
    for w in split_camel_case(local_name) {
        if w == word_lower {
            best = best.max(0.95);
        }
    }
    for w in label.to_lowercase().split_whitespace() {
        if w == word_lower {
            best = best.max(0.95);
        } else {
            best = best.max(lcs_score_pre(word_lower, w, scratch) * 0.9);
        }
    }
    best
}

/// Similarity between a question word and a property (local name + label):
/// the best of (a) whole-name LCS, (b) exact match against any constituent
/// word of the name/label (scored 0.95 — near-exact, since property names
/// are compounds: `population` hits `populationTotal`).
pub fn property_name_score(word: &str, local_name: &str, label: &str) -> f64 {
    let word = word.to_lowercase();
    property_name_score_pre(&word, local_name, label, &mut LcsScratch::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcs_basics() {
        assert_eq!(lcs_len("abc", "abc"), 3);
        assert_eq!(lcs_len("abc", "axc"), 2);
        assert_eq!(lcs_len("abc", ""), 0);
        assert_eq!(lcs_len("write", "writer"), 5);
        assert_eq!(lcs_len("written", "writer"), 5); // w,r,i,t,e + one t = writte? -> "write" + t
    }

    #[test]
    fn paper_taxidriver_example_is_rejected() {
        // "the property 'taxiDriver' encapsulates the word 'river'" — the
        // normalized score must kill it.
        let score = lcs_score("river", "taxiDriver");
        assert!(score <= 0.5, "got {score}");
        // While a genuine morphological variant passes.
        assert!(lcs_score("write", "writer") > 0.8);
    }

    #[test]
    fn written_maps_to_writer() {
        // §2.2.1: dbont:writer is the most similar property for "written".
        let writer = lcs_score("written", "writer");
        let taxi = lcs_score("written", "taxiDriver");
        assert!(writer > taxi);
        assert!(writer > 0.7);
    }

    #[test]
    fn camel_case_split() {
        assert_eq!(split_camel_case("populationTotal"), vec!["population", "total"]);
        assert_eq!(split_camel_case("birthPlace"), vec!["birth", "place"]);
        assert_eq!(split_camel_case("height"), vec!["height"]);
        assert_eq!(split_camel_case("numberOfPages"), vec!["number", "of", "pages"]);
    }

    #[test]
    fn property_name_score_uses_constituents() {
        assert!(property_name_score("population", "populationTotal", "population total") >= 0.95);
        assert!(property_name_score("height", "height", "height") >= 0.95);
        assert!(property_name_score("pages", "numberOfPages", "number of pages") >= 0.95);
        assert!(property_name_score("zebra", "populationTotal", "population total") < 0.5);
    }

    #[test]
    fn score_is_symmetric_and_bounded() {
        for (a, b) in [("write", "writer"), ("die", "deathPlace"), ("", "x")] {
            let s1 = lcs_score(a, b);
            let s2 = lcs_score(b, a);
            assert!((s1 - s2).abs() < 1e-12);
            assert!((0.0..=1.0).contains(&s1));
        }
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(lcs_score("Height", "height"), 1.0);
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let mut scratch = LcsScratch::default();
        let pairs = [
            ("written", "writer"),
            ("über", "uber"),     // non-ASCII path
            ("a", "a"),
            ("", "xyz"),
            ("longerstring", "short"),
            ("naïve", "naïveté"), // shrinking then growing rows
        ];
        for (a, b) in pairs {
            assert_eq!(lcs_len_with(a, b, &mut scratch), lcs_len(a, b), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn pre_lowered_variants_match_plain_entry_points() {
        let mut scratch = LcsScratch::default();
        for word in ["Written", "POPULATION", "höhe", "a"] {
            let lower = word.to_lowercase();
            assert_eq!(
                property_name_score_pre(&lower, "populationTotal", "population total", &mut scratch),
                property_name_score(word, "populationTotal", "population total"),
            );
            assert_eq!(
                lcs_score_pre(&lower, "writer", &mut scratch),
                lcs_score(word, "writer"),
            );
        }
    }
}
