//! String similarity for property and entity matching (paper §2.2.1).
//!
//! The paper scores candidates by the *greatest common subsequence*: the
//! score is the subsequence length normalized by word length, which rejects
//! accidental containments like `river` ⊂ `taxiDriver` (their example). We
//! normalize by the length of the longer string, which penalizes both
//! one-sided containments symmetrically.

/// Length of the longest common subsequence of two ASCII-lowered strings.
pub fn lcs_len(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    // Two-row DP.
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for &ca in &a {
        for (j, &cb) in b.iter().enumerate() {
            cur[j + 1] = if ca == cb {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
        cur[0] = 0;
    }
    prev[b.len()]
}

/// Similarity score in `[0, 1]`: `lcs / max(|a|, |b|)`, case-insensitive.
///
/// `taxiDriver` vs `river`: lcs = 5, max = 10 → 0.5 (rejected at any
/// reasonable threshold), while `written`→`writer` scores 5/7 ≈ 0.71 and
/// `write`→`writer` 5/6 ≈ 0.83.
pub fn lcs_score(a: &str, b: &str) -> f64 {
    let a = a.to_lowercase();
    let b = b.to_lowercase();
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 0.0;
    }
    lcs_len(&a, &b) as f64 / max as f64
}

/// Splits a camelCase property local name into lower-cased words
/// (`populationTotal` → `["population", "total"]`).
pub fn split_camel_case(name: &str) -> Vec<String> {
    let mut words = Vec::new();
    let mut cur = String::new();
    for c in name.chars() {
        if c.is_uppercase() && !cur.is_empty() {
            words.push(std::mem::take(&mut cur));
        }
        cur.extend(c.to_lowercase());
    }
    if !cur.is_empty() {
        words.push(cur);
    }
    words
}

/// Similarity between a question word and a property (local name + label):
/// the best of (a) whole-name LCS, (b) exact match against any constituent
/// word of the name/label (scored 0.95 — near-exact, since property names
/// are compounds: `population` hits `populationTotal`).
pub fn property_name_score(word: &str, local_name: &str, label: &str) -> f64 {
    let word = word.to_lowercase();
    let mut best = lcs_score(&word, local_name);
    for w in split_camel_case(local_name) {
        if w == word {
            best = best.max(0.95);
        }
    }
    for w in label.to_lowercase().split_whitespace() {
        if w == word {
            best = best.max(0.95);
        } else {
            best = best.max(lcs_score(&word, w) * 0.9);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcs_basics() {
        assert_eq!(lcs_len("abc", "abc"), 3);
        assert_eq!(lcs_len("abc", "axc"), 2);
        assert_eq!(lcs_len("abc", ""), 0);
        assert_eq!(lcs_len("write", "writer"), 5);
        assert_eq!(lcs_len("written", "writer"), 5); // w,r,i,t,e + one t = writte? -> "write" + t
    }

    #[test]
    fn paper_taxidriver_example_is_rejected() {
        // "the property 'taxiDriver' encapsulates the word 'river'" — the
        // normalized score must kill it.
        let score = lcs_score("river", "taxiDriver");
        assert!(score <= 0.5, "got {score}");
        // While a genuine morphological variant passes.
        assert!(lcs_score("write", "writer") > 0.8);
    }

    #[test]
    fn written_maps_to_writer() {
        // §2.2.1: dbont:writer is the most similar property for "written".
        let writer = lcs_score("written", "writer");
        let taxi = lcs_score("written", "taxiDriver");
        assert!(writer > taxi);
        assert!(writer > 0.7);
    }

    #[test]
    fn camel_case_split() {
        assert_eq!(split_camel_case("populationTotal"), vec!["population", "total"]);
        assert_eq!(split_camel_case("birthPlace"), vec!["birth", "place"]);
        assert_eq!(split_camel_case("height"), vec!["height"]);
        assert_eq!(split_camel_case("numberOfPages"), vec!["number", "of", "pages"]);
    }

    #[test]
    fn property_name_score_uses_constituents() {
        assert!(property_name_score("population", "populationTotal", "population total") >= 0.95);
        assert!(property_name_score("height", "height", "height") >= 0.95);
        assert!(property_name_score("pages", "numberOfPages", "number of pages") >= 0.95);
        assert!(property_name_score("zebra", "populationTotal", "population total") < 0.5);
    }

    #[test]
    fn score_is_symmetric_and_bounded() {
        for (a, b) in [("write", "writer"), ("die", "deathPlace"), ("", "x")] {
            let s1 = lcs_score(a, b);
            let s2 = lcs_score(b, a);
            assert!((s1 - s2).abs() < 1e-12);
            assert!((0.0..=1.0).contains(&s1));
        }
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(lcs_score("Height", "height"), 1.0);
    }
}
