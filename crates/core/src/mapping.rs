//! Entity and property extraction (paper §2.2).
//!
//! Maps the slots of each candidate triple onto the knowledge base:
//!
//! - subjects/objects → entities (with graph-centrality disambiguation,
//!   §2.2.5) or ontology classes (§2.2.4);
//! - verb predicates → object properties by string similarity (§2.2.1),
//!   expanded with WordNet similar-property pairs, plus relational-pattern
//!   candidates with frequency scores (§2.2.3);
//! - noun/adjective predicates → data properties via string similarity and
//!   the WordNet adjective list (§2.2.2).
//!
//! Every candidate records its provenance so ablations can switch sources
//! off and the ranking step can weight them.

use relpat_kb::{normalize_label, KnowledgeBase};
use relpat_patterns::PatternStore;
use relpat_rdf::Iri;
use relpat_wordnet::{derived_noun, WnPos, WordNet};
use relpat_obs::fx::FxHashMap;

use crate::similarity::{lcs_score, lcs_score_pre, property_name_score_pre, LcsScratch};
use crate::triples::{PatternTriple, PredKind, PredicateSlot, QuestionAnalysis, SlotTerm};

/// Where a property candidate came from (drives weights and ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateSource {
    /// §2.2.1 / §2.2.2: greatest-common-subsequence similarity.
    StringSimilarity,
    /// §2.2.1: WordNet Lin/Wu–Palmer similar-property pairs.
    WordNetPair,
    /// §2.2.2: adjective → attribute noun (tall → height).
    AdjectiveAttribute,
    /// WordNet derivational link (born → birth → birthDate).
    DerivedNoun,
    /// §2.2.3: relational pattern frequency.
    RelationalPattern,
}

/// One property candidate for a predicate slot.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyCandidate {
    /// Property local name (`deathPlace`).
    pub property: String,
    /// True for data properties.
    pub is_data: bool,
    /// Direction hint from pattern evidence: `Some(true)` means the
    /// textual subject/object order is inverted relative to the RDF fact.
    pub preferred_inverse: Option<bool>,
    /// Ranking weight (pattern frequency or scaled similarity).
    pub weight: f64,
    pub source: CandidateSource,
}

/// A resolved entity mention.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedEntity {
    pub iri: Iri,
    pub label: String,
    pub score: f64,
}

/// A mapped slot.
#[derive(Debug, Clone, PartialEq)]
pub enum MappedSlot {
    Var,
    Entity(ResolvedEntity),
}

/// A fully mapped triple pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum MappedTriple {
    /// `?x rdf:type <Class>`
    Type { class: String },
    /// A relation triple with its candidate properties.
    Relation { subject: MappedSlot, object: MappedSlot, candidates: Vec<PropertyCandidate> },
}

/// Output of the mapping stage.
#[derive(Debug, Clone, PartialEq)]
pub struct MappedQuestion {
    pub triples: Vec<MappedTriple>,
}

/// Knobs for the mapping stage (ablation switches live here).
#[derive(Debug, Clone)]
pub struct MappingConfig {
    pub use_relational_patterns: bool,
    /// Consult *data-property* patterns mined from entity–literal text
    /// (extended system only; the paper's PATTY has object patterns only).
    pub use_data_patterns: bool,
    pub use_wordnet_expansion: bool,
    pub use_centrality: bool,
    /// Acceptance threshold for string similarity (paper normalizes LCS by
    /// word length; we sweep this in ablation A4).
    pub string_sim_threshold: f64,
    /// Fuzzy entity-label acceptance threshold.
    pub entity_sim_threshold: f64,
    /// Keep at most this many pattern candidates per predicate.
    pub max_pattern_candidates: usize,
    /// Route entity/property string-similarity scans through the KB's
    /// prebuilt [`relpat_kb::LexicalIndex`] instead of brute-force label
    /// scans. Candidates are bit-identical either way (the index only
    /// prunes provably below-threshold entries); the flag is the escape
    /// hatch and the lever for the equivalence test.
    pub use_lexical_index: bool,
}

impl Default for MappingConfig {
    fn default() -> Self {
        MappingConfig {
            use_relational_patterns: true,
            use_data_patterns: false,
            use_wordnet_expansion: true,
            use_centrality: true,
            string_sim_threshold: 0.7,
            entity_sim_threshold: 0.85,
            max_pattern_candidates: 5,
            use_lexical_index: true,
        }
    }
}

/// The mapper: borrows the KB, the lexical database, the pattern store and
/// the precomputed similar-property pairs.
pub struct Mapper<'a> {
    pub kb: &'a KnowledgeBase,
    pub wordnet: &'static WordNet,
    pub patterns: &'a PatternStore,
    pub similar_pairs: &'a FxHashMap<String, Vec<(String, f64)>>,
    pub config: MappingConfig,
}

/// Precomputes the §2.2.1 similar-property list: object-property pairs whose
/// label head words score Lin ≥ 0.75 and Wu–Palmer ≥ 0.85 (the paper's
/// thresholds), with compound modifiers required to match too (so
/// `birth place` ≁ `death place`).
pub fn similar_property_pairs(
    kb: &KnowledgeBase,
    wordnet: &WordNet,
) -> FxHashMap<String, Vec<(String, f64)>> {
    let mut out: FxHashMap<String, Vec<(String, f64)>> = FxHashMap::default();
    let props = &kb.ontology.object_properties;
    // Lin/Wu–Palmer and the modifier check are symmetric, so each unordered
    // pair is scored once and recorded in both directions. Partners still
    // arrive in ascending ontology order for every entry: pairs with a
    // lower-indexed partner are pushed while the outer loop is on that
    // partner, before the entry's own outer iteration pushes the rest.
    for (i, a) in props.iter().enumerate() {
        for b in &props[i + 1..] {
            if let Some(score) = label_pair_similarity(a.label, b.label, wordnet) {
                out.entry(a.name.to_string()).or_default().push((b.name.to_string(), score));
                out.entry(b.name.to_string()).or_default().push((a.name.to_string(), score));
            }
        }
    }
    out
}

fn label_pair_similarity(a: &str, b: &str, wordnet: &WordNet) -> Option<f64> {
    let wa: Vec<&str> = a.split_whitespace().collect();
    let wb: Vec<&str> = b.split_whitespace().collect();
    let (ha, hb) = (*wa.last()?, *wb.last()?);
    let lin = wordnet.lin(ha, hb, WnPos::Noun)?;
    let wup = wordnet.wup(ha, hb, WnPos::Noun)?;
    if lin < 0.75 || wup < 0.85 {
        return None;
    }
    // Modifier compatibility: both compound or both simple, and compound
    // modifiers must themselves pass the thresholds.
    match (wa.len(), wb.len()) {
        (1, 1) => Some(lin),
        (x, y) if x >= 2 && y >= 2 => {
            let (ma, mb) = (wa[wa.len() - 2], wb[wb.len() - 2]);
            if ma == mb {
                return Some(lin);
            }
            let mlin = wordnet.lin(ma, mb, WnPos::Noun)?;
            let mwup = wordnet.wup(ma, mb, WnPos::Noun)?;
            if mlin >= 0.75 && mwup >= 0.85 {
                Some(lin * mlin)
            } else {
                None
            }
        }
        _ => None,
    }
}

impl Mapper<'_> {
    /// Maps an analyzed question. `None` = some slot could not be resolved
    /// (the question is abandoned, paper §3's unprocessed bucket).
    pub fn map(&self, analysis: &QuestionAnalysis) -> Option<MappedQuestion> {
        // Gather all mention texts for cross-mention centrality.
        let mention_pools: Vec<Vec<Iri>> = analysis
            .triples
            .iter()
            .flat_map(|t| [&t.subject, &t.object])
            .filter_map(|s| match s {
                SlotTerm::Mention { text } => Some(self.entity_pool(text)),
                SlotTerm::Var => None,
            })
            .collect();

        let mut triples = Vec::with_capacity(analysis.triples.len());
        for t in &analysis.triples {
            triples.push(self.map_triple(t, &mention_pools)?);
        }
        Some(MappedQuestion { triples })
    }

    fn map_triple(
        &self,
        triple: &PatternTriple,
        pools: &[Vec<Iri>],
    ) -> Option<MappedTriple> {
        if let Some(class_word) = triple.class_word() {
            let class = self.resolve_class(class_word)?;
            return Some(MappedTriple::Type { class: class.to_string() });
        }
        let subject = self.map_slot(&triple.subject, pools)?;
        let object = self.map_slot(&triple.object, pools)?;
        let candidates = match &triple.predicate {
            PredicateSlot::RdfType => return None, // class word was not a mention
            PredicateSlot::Word { text, lemma, kind } => {
                self.property_candidates(text, lemma, *kind)
            }
        };
        if candidates.is_empty() {
            return None;
        }
        Some(MappedTriple::Relation { subject, object, candidates })
    }

    fn map_slot(&self, slot: &SlotTerm, pools: &[Vec<Iri>]) -> Option<MappedSlot> {
        match slot {
            SlotTerm::Var => Some(MappedSlot::Var),
            SlotTerm::Mention { text } => {
                self.resolve_entity(text, pools).map(MappedSlot::Entity)
            }
        }
    }

    // ---------------------------------------------------------------- classes

    /// §2.2.4: class by label, with a fuzzy fallback.
    pub fn resolve_class(&self, word: &str) -> Option<&'static str> {
        if let Some(c) = self.kb.class_with_label(word) {
            return Some(c);
        }
        self.kb
            .ontology
            .classes
            .iter()
            .map(|c| (c.name, lcs_score(word, c.label)))
            .filter(|(_, s)| *s >= 0.8)
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(name, _)| name)
    }

    // --------------------------------------------------------------- entities

    /// Candidate entities for a mention (exact normalized label, then fuzzy).
    /// The fuzzy scan goes through the lexical index unless the escape-hatch
    /// flag is off; either way the query is normalized (hence lowercased)
    /// once and scored with a shared DP scratch.
    pub fn entity_pool(&self, text: &str) -> Vec<Iri> {
        let exact = self.kb.entities_with_label(text);
        if !exact.is_empty() {
            return exact.to_vec();
        }
        let norm = normalize_label(text);
        let threshold = self.config.entity_sim_threshold;
        let mut scratch = LcsScratch::default();
        let mut scored: Vec<(f64, &Iri)> = Vec::new();
        if self.config.use_lexical_index {
            for (label, iris) in self.kb.lexical().entity_candidates(&norm, threshold) {
                let s = lcs_score_pre(&norm, label, &mut scratch);
                if s >= threshold {
                    for iri in iris {
                        scored.push((s, iri));
                    }
                }
            }
        } else {
            for (label, iris) in self.kb.labels_iter() {
                let s = lcs_score_pre(&norm, label, &mut scratch);
                if s >= threshold {
                    for iri in iris {
                        scored.push((s, iri));
                    }
                }
            }
        }
        // Equal-score ties break on the IRI so the top-5 truncation is
        // stable regardless of label iteration order.
        scored.sort_by(|(sa, ia), (sb, ib)| sb.total_cmp(sa).then_with(|| ia.cmp(ib)));
        scored.into_iter().take(5).map(|(_, iri)| iri.clone()).collect()
    }

    /// §2.2.5: disambiguation by string similarity + page-link centrality.
    /// The centrality terms are (a) links to candidates of the *other*
    /// mentions in the question and (b) a global page-degree prior.
    pub fn resolve_entity(&self, text: &str, pools: &[Vec<Iri>]) -> Option<ResolvedEntity> {
        let candidates = self.entity_pool(text);
        relpat_obs::counter!("qa.map.entity_lookups");
        relpat_obs::counter!("qa.map.entity_candidates", candidates.len() as u64);
        if candidates.is_empty() {
            return None;
        }
        let norm = normalize_label(text);
        let max_degree = candidates
            .iter()
            .map(|c| self.kb.page_degree(c))
            .max()
            .unwrap_or(0)
            .max(1) as f64;
        let mut best: Option<ResolvedEntity> = None;
        for iri in &candidates {
            let label = self.kb.label_of(iri).unwrap_or_default().to_string();
            let sim = lcs_score(&norm, &normalize_label(&label));
            let mut score = sim;
            if self.config.use_centrality {
                let degree = self.kb.page_degree(iri) as f64 / max_degree;
                let linked = pools
                    .iter()
                    .filter(|pool| !pool.iter().any(|p| p == iri)) // other mentions
                    .any(|pool| pool.iter().any(|p| self.kb.are_linked(iri, p)));
                score += 0.3 * degree + 0.5 * f64::from(linked);
            }
            if best.as_ref().is_none_or(|b| score > b.score) {
                best = Some(ResolvedEntity { iri: iri.clone(), label, score });
            }
        }
        best
    }

    // -------------------------------------------------------------- properties

    /// All property candidates for a predicate word, per §2.2.1–§2.2.3.
    pub fn property_candidates(
        &self,
        text: &str,
        lemma: &str,
        kind: PredKind,
    ) -> Vec<PropertyCandidate> {
        let mut out: Vec<PropertyCandidate> = Vec::new();
        match kind {
            PredKind::Verb => {
                self.string_sim_object_properties(text, lemma, &mut out);
                self.wordnet_expansion(&mut out);
                self.derived_noun_data_properties(lemma, &mut out);
                self.pattern_candidates(lemma, &mut out);
            }
            PredKind::Noun => {
                self.string_sim_data_properties(text, lemma, &mut out);
                self.string_sim_object_properties(text, lemma, &mut out);
                self.wordnet_expansion(&mut out);
                self.wordnet_noun_properties(lemma, &mut out);
                self.pattern_candidates(lemma, &mut out);
            }
            PredKind::Adjective => {
                if let Some(attr) = self.wordnet.attribute_noun(lemma) {
                    self.data_properties_matching(attr, 10.0, CandidateSource::AdjectiveAttribute, &mut out);
                }
                self.string_sim_data_properties(text, lemma, &mut out);
                // Mined data patterns ("$v meter tall" → height) cover
                // adjectives the curated attribute list misses.
                self.pattern_candidates(lemma, &mut out);
            }
        }
        let out = dedup_candidates(out);
        relpat_obs::counter!("qa.map.slots");
        relpat_obs::counter!("qa.map.candidates", out.len() as u64);
        out
    }

    /// §2.2.1: verbs against object properties by LCS score.
    fn string_sim_object_properties(
        &self,
        text: &str,
        lemma: &str,
        out: &mut Vec<PropertyCandidate>,
    ) {
        self.string_sim_properties(text, lemma, false, out);
    }

    /// §2.2.2: nouns against data properties by LCS score.
    fn string_sim_data_properties(
        &self,
        text: &str,
        lemma: &str,
        out: &mut Vec<PropertyCandidate>,
    ) {
        self.string_sim_properties(text, lemma, true, out);
    }

    /// Shared §2.2.1/§2.2.2 scan: both the word and its lemma against one
    /// property family. The word pair is lowercased once; the lexical index
    /// narrows the family to entries that can clear the threshold, and
    /// survivors are rescored exactly (in ontology order either way).
    fn string_sim_properties(
        &self,
        text: &str,
        lemma: &str,
        is_data: bool,
        out: &mut Vec<PropertyCandidate>,
    ) {
        let threshold = self.config.string_sim_threshold;
        let (text_l, lemma_l) = (text.to_lowercase(), lemma.to_lowercase());
        let mut scratch = LcsScratch::default();
        let mut score_and_push = |name: &str, label: &str| {
            let s = property_name_score_pre(&lemma_l, name, label, &mut scratch)
                .max(property_name_score_pre(&text_l, name, label, &mut scratch));
            if s >= threshold {
                out.push(PropertyCandidate {
                    property: name.to_string(),
                    is_data,
                    preferred_inverse: None,
                    weight: s * 10.0,
                    source: CandidateSource::StringSimilarity,
                });
            }
        };
        if is_data {
            let props = &self.kb.ontology.data_properties;
            if self.config.use_lexical_index {
                let hits =
                    self.kb.lexical().data_property_candidates(&[&lemma_l, &text_l], threshold);
                for i in hits {
                    score_and_push(props[i].name, props[i].label);
                }
            } else {
                for p in props {
                    score_and_push(p.name, p.label);
                }
            }
        } else {
            let props = &self.kb.ontology.object_properties;
            if self.config.use_lexical_index {
                let hits =
                    self.kb.lexical().object_property_candidates(&[&lemma_l, &text_l], threshold);
                for i in hits {
                    score_and_push(props[i].name, props[i].label);
                }
            } else {
                for p in props {
                    score_and_push(p.name, p.label);
                }
            }
        }
    }

    /// Data properties whose name/label matches a given noun near-exactly.
    fn data_properties_matching(
        &self,
        noun: &str,
        weight: f64,
        source: CandidateSource,
        out: &mut Vec<PropertyCandidate>,
    ) {
        let noun_l = noun.to_lowercase();
        let mut scratch = LcsScratch::default();
        let props = &self.kb.ontology.data_properties;
        let mut check_and_push = |name: &str, label: &str| {
            if property_name_score_pre(&noun_l, name, label, &mut scratch) >= 0.9 {
                out.push(PropertyCandidate {
                    property: name.to_string(),
                    is_data: true,
                    preferred_inverse: None,
                    weight,
                    source,
                });
            }
        };
        if self.config.use_lexical_index {
            for i in self.kb.lexical().data_property_candidates(&[&noun_l], 0.9) {
                check_and_push(props[i].name, props[i].label);
            }
        } else {
            for p in props {
                check_and_push(p.name, p.label);
            }
        }
    }

    /// WordNet derivational link: verb → event noun → data property
    /// (`born` → `birth` → `birthDate`). Covers the date questions the
    /// pattern store cannot (it holds object properties only, paper §5).
    fn derived_noun_data_properties(&self, lemma: &str, out: &mut Vec<PropertyCandidate>) {
        if let Some(noun) = derived_noun(lemma) {
            self.data_properties_matching(noun, 8.0, CandidateSource::DerivedNoun, out);
        }
    }

    /// §2.2.1: expand string-similarity seeds with the precomputed
    /// similar-meaning property pairs (writer → author).
    fn wordnet_expansion(&self, out: &mut Vec<PropertyCandidate>) {
        if !self.config.use_wordnet_expansion {
            return;
        }
        let seeds: Vec<(String, f64)> = out
            .iter()
            .filter(|c| !c.is_data && c.source == CandidateSource::StringSimilarity)
            .map(|c| (c.property.clone(), c.weight))
            .collect();
        for (seed, weight) in seeds {
            if let Some(similar) = self.similar_pairs.get(&seed) {
                for (other, score) in similar {
                    out.push(PropertyCandidate {
                        property: other.clone(),
                        is_data: false,
                        preferred_inverse: None,
                        weight: weight * score * 0.8,
                        source: CandidateSource::WordNetPair,
                    });
                }
            }
        }
    }

    /// Noun predicates matched to object-property label heads through
    /// WordNet (wife → spouse) using the paper's thresholds.
    fn wordnet_noun_properties(&self, lemma: &str, out: &mut Vec<PropertyCandidate>) {
        if !self.config.use_wordnet_expansion {
            return;
        }
        for p in &self.kb.ontology.object_properties {
            let head = p.label.split_whitespace().last().unwrap_or(p.label);
            if head == lemma {
                continue; // string similarity already found it
            }
            let (Some(lin), Some(wup)) = (
                self.wordnet.lin(lemma, head, WnPos::Noun),
                self.wordnet.wup(lemma, head, WnPos::Noun),
            ) else {
                continue;
            };
            if lin >= 0.75 && wup >= 0.85 {
                out.push(PropertyCandidate {
                    property: p.name.to_string(),
                    is_data: false,
                    preferred_inverse: None,
                    weight: lin * 8.0,
                    source: CandidateSource::WordNetPair,
                });
            }
        }
    }

    /// §2.2.3: relational-pattern candidates, frequency-weighted.
    fn pattern_candidates(&self, lemma: &str, out: &mut Vec<PropertyCandidate>) {
        if !self.config.use_relational_patterns {
            return;
        }
        let mut taken = 0usize;
        for c in self.patterns.candidates_for_word(lemma) {
            if c.is_data && !self.config.use_data_patterns {
                continue;
            }
            if taken >= self.config.max_pattern_candidates {
                break;
            }
            taken += 1;
            out.push(PropertyCandidate {
                property: c.property.clone(),
                is_data: c.is_data,
                // Data patterns have a forced orientation (entity → literal);
                // object patterns carry their observed direction.
                preferred_inverse: if c.is_data { None } else { Some(c.inverse) },
                weight: c.freq as f64,
                source: CandidateSource::RelationalPattern,
            });
        }
    }
}

/// Merges duplicate `(property, is_data, preferred_inverse)` candidates,
/// keeping the maximum weight, and sorts by weight descending.
fn dedup_candidates(candidates: Vec<PropertyCandidate>) -> Vec<PropertyCandidate> {
    let mut merged: Vec<PropertyCandidate> = Vec::new();
    for c in candidates {
        match merged.iter_mut().find(|m| {
            m.property == c.property
                && m.is_data == c.is_data
                && m.preferred_inverse == c.preferred_inverse
        }) {
            Some(existing) => {
                if c.weight > existing.weight {
                    existing.weight = c.weight;
                    existing.source = c.source;
                }
            }
            None => merged.push(c),
        }
    }
    merged.sort_by(|a, b| b.weight.total_cmp(&a.weight));
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use relpat_kb::{generate, KbConfig};
    use relpat_patterns::{mine, CorpusConfig};
    use relpat_wordnet::embedded;
    use std::sync::OnceLock;

    struct Fixture {
        kb: KnowledgeBase,
        patterns: PatternStore,
        pairs: FxHashMap<String, Vec<(String, f64)>>,
    }

    fn fixture() -> &'static Fixture {
        static F: OnceLock<Fixture> = OnceLock::new();
        F.get_or_init(|| {
            let kb = generate(&KbConfig::tiny());
            let mined = mine(&kb, &CorpusConfig::default());
            let pairs = similar_property_pairs(&kb, embedded());
            Fixture { kb, patterns: mined.store, pairs }
        })
    }

    fn mapper() -> Mapper<'static> {
        let f = fixture();
        Mapper {
            kb: &f.kb,
            wordnet: embedded(),
            patterns: &f.patterns,
            similar_pairs: &f.pairs,
            config: MappingConfig::default(),
        }
    }

    #[test]
    fn similar_pairs_match_naive_double_loop() {
        // The i<j halving must reproduce the full (a,b)+(b,a) grid exactly,
        // including partner order within each entry.
        let f = fixture();
        let wordnet = embedded();
        let mut naive: FxHashMap<String, Vec<(String, f64)>> = FxHashMap::default();
        let props = &f.kb.ontology.object_properties;
        for a in props {
            for b in props {
                if a.name == b.name {
                    continue;
                }
                if let Some(score) = label_pair_similarity(a.label, b.label, wordnet) {
                    naive
                        .entry(a.name.to_string())
                        .or_default()
                        .push((b.name.to_string(), score));
                }
            }
        }
        assert_eq!(similar_property_pairs(&f.kb, wordnet), naive);
    }

    #[test]
    fn similar_pairs_contain_writer_author_but_not_birth_death() {
        let f = fixture();
        let writer = f.pairs.get("writer").map(Vec::as_slice).unwrap_or(&[]);
        assert!(writer.iter().any(|(p, _)| p == "author"), "{writer:?}");
        let birth = f.pairs.get("birthPlace").map(Vec::as_slice).unwrap_or(&[]);
        assert!(!birth.iter().any(|(p, _)| p == "deathPlace"), "{birth:?}");
    }

    #[test]
    fn written_maps_to_writer_and_author() {
        // Paper §2.2.1: Pt("written") = {dbont:writer, dbont:author}.
        let m = mapper();
        let cands = m.property_candidates("written", "write", PredKind::Verb);
        let props: Vec<&str> = cands.iter().map(|c| c.property.as_str()).collect();
        assert!(props.contains(&"writer"), "{props:?}");
        assert!(props.contains(&"author"), "{props:?}");
    }

    #[test]
    fn die_maps_to_death_birth_residence_ranked() {
        // Paper §2.2.3: Pt("die") = {deathPlace, birthPlace, residence} with
        // deathPlace ranked highest by pattern frequency.
        let m = mapper();
        let cands = m.property_candidates("die", "die", PredKind::Verb);
        let top_pattern = cands
            .iter()
            .filter(|c| c.source == CandidateSource::RelationalPattern)
            .max_by(|a, b| a.weight.total_cmp(&b.weight))
            .unwrap();
        assert_eq!(top_pattern.property, "deathPlace");
    }

    #[test]
    fn tall_maps_to_height_via_adjective_list() {
        // Paper §2.2.2: "tall" → dbont:height.
        let m = mapper();
        let cands = m.property_candidates("tall", "tall", PredKind::Adjective);
        assert_eq!(cands[0].property, "height");
        assert!(cands[0].is_data);
        assert_eq!(cands[0].source, CandidateSource::AdjectiveAttribute);
    }

    #[test]
    fn height_noun_maps_to_height_data_property() {
        let m = mapper();
        let cands = m.property_candidates("height", "height", PredKind::Noun);
        assert_eq!(cands[0].property, "height");
        assert!(cands[0].is_data);
    }

    #[test]
    fn population_maps_to_population_total() {
        let m = mapper();
        let cands = m.property_candidates("population", "population", PredKind::Noun);
        assert!(cands.iter().any(|c| c.property == "populationTotal" && c.is_data));
    }

    #[test]
    fn wife_maps_to_spouse_via_wordnet() {
        let m = mapper();
        let cands = m.property_candidates("wife", "wife", PredKind::Noun);
        assert!(
            cands
                .iter()
                .any(|c| c.property == "spouse" && c.source == CandidateSource::WordNetPair),
            "{cands:?}"
        );
    }

    #[test]
    fn born_maps_to_birth_date_via_derivation() {
        let m = mapper();
        let cands = m.property_candidates("born", "bear", PredKind::Verb);
        assert!(
            cands
                .iter()
                .any(|c| c.property == "birthDate" && c.source == CandidateSource::DerivedNoun),
            "{cands:?}"
        );
        // And birthPlace via patterns.
        assert!(cands.iter().any(|c| c.property == "birthPlace"));
    }

    #[test]
    fn alive_has_no_candidates() {
        // Paper §5: neither the property list nor the patterns contain
        // "alive" — the polar question dies here.
        let m = mapper();
        assert!(m.property_candidates("is", "be", PredKind::Verb).is_empty());
        assert!(m.property_candidates("alive", "alive", PredKind::Adjective).is_empty());
    }

    #[test]
    fn entity_resolution_exact_label() {
        let m = mapper();
        let e = m.resolve_entity("Orhan Pamuk", &[]).unwrap();
        assert!(e.iri.as_str().ends_with("Orhan_Pamuk"));
        assert_eq!(e.label, "Orhan Pamuk");
    }

    #[test]
    fn michael_jordan_disambiguates_to_athlete_by_centrality() {
        let m = mapper();
        let e = m.resolve_entity("Michael Jordan", &[]).unwrap();
        assert!(m.kb.is_instance_of(&e.iri, "Athlete"), "picked {}", e.iri.as_str());
    }

    #[test]
    fn centrality_off_changes_nothing_for_unambiguous_mentions() {
        let f = fixture();
        let m = Mapper {
            config: MappingConfig { use_centrality: false, ..MappingConfig::default() },
            kb: &f.kb,
            wordnet: embedded(),
            patterns: &f.patterns,
            similar_pairs: &f.pairs,
        };
        let e = m.resolve_entity("Abraham Lincoln", &[]).unwrap();
        assert!(e.iri.as_str().ends_with("Abraham_Lincoln"));
    }

    #[test]
    fn unknown_mention_resolves_to_none() {
        let m = mapper();
        assert!(m.resolve_entity("Zorblax the Unknowable", &[]).is_none());
    }

    #[test]
    fn class_resolution() {
        let m = mapper();
        assert_eq!(m.resolve_class("book"), Some("Book"));
        assert_eq!(m.resolve_class("film"), Some("Film"));
        assert_eq!(m.resolve_class("city"), Some("City"));
        assert_eq!(m.resolve_class("spaceship"), None);
    }

    #[test]
    fn end_to_end_mapping_of_figure1() {
        let m = mapper();
        let analysis =
            crate::triples::extract(&relpat_nlp::parse_sentence("Which book is written by Orhan Pamuk?"))
                .unwrap();
        let mapped = m.map(&analysis).unwrap();
        assert_eq!(mapped.triples.len(), 2);
        assert!(matches!(&mapped.triples[0], MappedTriple::Type { class } if class == "Book"));
        match &mapped.triples[1] {
            MappedTriple::Relation { subject, object, candidates } => {
                assert_eq!(subject, &MappedSlot::Var);
                assert!(matches!(object, MappedSlot::Entity(e) if e.label == "Orhan Pamuk"));
                assert!(candidates.iter().any(|c| c.property == "author"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mapping_fails_cleanly_for_unknown_entity() {
        let m = mapper();
        let analysis = crate::triples::extract(&relpat_nlp::parse_sentence(
            "Who directed Zorblax?",
        ))
        .unwrap();
        assert!(m.map(&analysis).is_none());
    }

    #[test]
    fn patterns_off_drops_pattern_candidates() {
        let f = fixture();
        let m = Mapper {
            config: MappingConfig {
                use_relational_patterns: false,
                ..MappingConfig::default()
            },
            kb: &f.kb,
            wordnet: embedded(),
            patterns: &f.patterns,
            similar_pairs: &f.pairs,
        };
        let cands = m.property_candidates("die", "die", PredKind::Verb);
        assert!(cands
            .iter()
            .all(|c| c.source != CandidateSource::RelationalPattern));
    }

    #[test]
    fn dedup_keeps_max_weight() {
        let c = |w: f64, src| PropertyCandidate {
            property: "author".into(),
            is_data: false,
            preferred_inverse: None,
            weight: w,
            source: src,
        };
        let merged = dedup_candidates(vec![
            c(3.0, CandidateSource::StringSimilarity),
            c(9.0, CandidateSource::WordNetPair),
        ]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].weight, 9.0);
        assert_eq!(merged[0].source, CandidateSource::WordNetPair);
    }
}
