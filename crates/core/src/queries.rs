//! Candidate query construction (paper §2.3).
//!
//! Builds the cartesian product of property candidates over the mapped
//! triples into concrete SPARQL queries, each carrying a ranking score (the
//! product of its predicates' weights, §2.3.1). Both orientations of every
//! relation are considered; the ontology's domain/range declarations prune
//! inconsistent ones, and pattern-evidence direction hints dampen the
//! disfavored orientation.

use relpat_kb::KnowledgeBase;
use relpat_rdf::vocab::{dbont, rdf};

use crate::mapping::{MappedQuestion, MappedSlot, MappedTriple, PropertyCandidate};
use crate::triples::QuestionAnalysis;

/// A concrete candidate query with its ranking score.
#[derive(Debug, Clone, PartialEq)]
pub struct BuiltQuery {
    pub sparql: String,
    pub score: f64,
}

/// One resolved relation triple option (property + orientation).
#[derive(Debug, Clone)]
struct TripleOption {
    line: String,
    weight: f64,
}

/// Builds ranked candidate queries. Returns at most `max` queries, highest
/// score first.
pub fn build_queries(
    kb: &KnowledgeBase,
    analysis: &QuestionAnalysis,
    mapped: &MappedQuestion,
    max: usize,
) -> Vec<BuiltQuery> {
    let mut fixed_lines: Vec<String> = Vec::new();
    let mut option_sets: Vec<Vec<TripleOption>> = Vec::new();
    // Class constraints from the Type triples, used for domain/range checks.
    let var_class: Option<&str> = mapped.triples.iter().find_map(|t| match t {
        MappedTriple::Type { class } => Some(class.as_str()),
        _ => None,
    });

    for triple in &mapped.triples {
        match triple {
            MappedTriple::Type { class } => {
                fixed_lines.push(format!("?x <{}> <{}> .", rdf::TYPE, dbont::iri(class)));
            }
            MappedTriple::Relation { subject, object, candidates } => {
                let mut options = Vec::new();
                for c in candidates {
                    for inverse in [false, true] {
                        if let Some(opt) =
                            triple_option(kb, subject, object, c, inverse, var_class)
                        {
                            options.push(opt);
                        }
                    }
                }
                if options.is_empty() {
                    return Vec::new(); // no consistent reading of this triple
                }
                options.sort_by(|a, b| b.weight.total_cmp(&a.weight));
                option_sets.push(options);
            }
        }
    }

    // Cartesian product over relation-triple options.
    let mut combos: Vec<(Vec<usize>, f64)> = vec![(Vec::new(), 1.0)];
    for set in &option_sets {
        let mut next = Vec::with_capacity(combos.len() * set.len());
        for (indices, score) in &combos {
            for (i, opt) in set.iter().enumerate() {
                let mut idx = indices.clone();
                idx.push(i);
                next.push((idx, score * opt.weight));
            }
        }
        combos = next;
        // Keep the product bounded as we go.
        combos.sort_by(|(_, a), (_, b)| b.total_cmp(a));
        combos.truncate(max.max(1));
    }

    let mut out: Vec<BuiltQuery> = combos
        .into_iter()
        .map(|(indices, score)| {
            let mut lines = fixed_lines.clone();
            for (set, &i) in option_sets.iter().zip(indices.iter()) {
                lines.push(set[i].line.clone());
            }
            let body = lines.join(" ");
            let sparql = if analysis.ask {
                format!("ASK {{ {body} }}")
            } else {
                format!("SELECT DISTINCT ?x WHERE {{ {body} }}")
            };
            BuiltQuery { sparql, score }
        })
        .collect();
    out.sort_by(|a, b| b.score.total_cmp(&a.score));
    out.dedup_by(|a, b| a.sparql == b.sparql);
    out
}

/// Renders one (candidate, orientation) pair as a SPARQL triple line, or
/// `None` when the ontology's domain/range rules it out.
fn triple_option(
    kb: &KnowledgeBase,
    subject: &MappedSlot,
    object: &MappedSlot,
    candidate: &PropertyCandidate,
    inverse: bool,
    var_class: Option<&str>,
) -> Option<TripleOption> {
    let (eff_subject, eff_object) =
        if inverse { (object, subject) } else { (subject, object) };

    // Direction-hint dampening.
    let orientation_factor = match candidate.preferred_inverse {
        Some(pref) if pref == inverse => 1.0,
        Some(_) => 0.25,
        None => {
            if inverse {
                0.9
            } else {
                1.0
            }
        }
    };

    let prop_iri = dbont::iri(&candidate.property);
    if candidate.is_data {
        // Data property: the literal side must be the variable, the subject
        // side an entity (or typed variable within the domain).
        if !matches!(eff_object, MappedSlot::Var) {
            return None;
        }
        let def = kb.ontology.data_properties.iter().find(|p| p.name == candidate.property)?;
        if !slot_compatible(kb, eff_subject, def.domain, var_class) {
            return None;
        }
        let s = render_slot(eff_subject);
        return Some(TripleOption {
            line: format!("{s} <{prop_iri}> ?x ."),
            weight: candidate.weight * orientation_factor,
        });
    }

    let def = kb.ontology.object_properties.iter().find(|p| p.name == candidate.property)?;
    if !slot_compatible(kb, eff_subject, def.domain, var_class)
        || !slot_compatible(kb, eff_object, def.range, var_class)
    {
        return None;
    }
    let s = render_slot(eff_subject);
    let o = render_slot(eff_object);
    Some(TripleOption {
        line: format!("{s} <{prop_iri}> {o} ."),
        weight: candidate.weight * orientation_factor,
    })
}

/// Domain/range compatibility: an entity slot must carry a class related to
/// the declared one (either direction along the taxonomy); a variable slot
/// is checked against the question's `rdf:type` constraint when present.
fn slot_compatible(
    kb: &KnowledgeBase,
    slot: &MappedSlot,
    declared: &str,
    var_class: Option<&str>,
) -> bool {
    let classes: Vec<String> = match slot {
        MappedSlot::Var => match var_class {
            Some(c) => vec![c.to_string()],
            None => return true,
        },
        MappedSlot::Entity(e) => {
            let cs = kb.classes_of(&e.iri);
            if cs.is_empty() {
                return true;
            }
            cs
        }
    };
    classes.iter().any(|c| {
        kb.ontology.is_subclass_of(c, declared) || kb.ontology.is_subclass_of(declared, c)
    })
}

fn render_slot(slot: &MappedSlot) -> String {
    match slot {
        MappedSlot::Var => "?x".to_string(),
        MappedSlot::Entity(e) => format!("<{}>", e.iri.as_str()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{similar_property_pairs, Mapper, MappingConfig};
    use crate::triples::extract;
    use relpat_kb::{generate, KbConfig, KnowledgeBase};
    use relpat_patterns::{mine, CorpusConfig, PatternStore};
    use relpat_wordnet::embedded;
    use relpat_obs::fx::FxHashMap;
    use std::sync::OnceLock;

    struct Fixture {
        kb: KnowledgeBase,
        patterns: PatternStore,
        pairs: FxHashMap<String, Vec<(String, f64)>>,
    }

    fn fixture() -> &'static Fixture {
        static F: OnceLock<Fixture> = OnceLock::new();
        F.get_or_init(|| {
            let kb = generate(&KbConfig::tiny());
            let mined = mine(&kb, &CorpusConfig::default());
            let pairs = similar_property_pairs(&kb, embedded());
            Fixture { kb, patterns: mined.store, pairs }
        })
    }

    fn queries_for(question: &str) -> Vec<BuiltQuery> {
        let f = fixture();
        let mapper = Mapper {
            kb: &f.kb,
            wordnet: embedded(),
            patterns: &f.patterns,
            similar_pairs: &f.pairs,
            config: MappingConfig::default(),
        };
        let analysis = extract(&relpat_nlp::parse_sentence(question)).unwrap();
        let mapped = mapper.map(&analysis).unwrap();
        build_queries(&f.kb, &analysis, &mapped, 50)
    }

    #[test]
    fn figure1_generates_the_papers_two_queries() {
        let queries = queries_for("Which book is written by Orhan Pamuk?");
        assert!(!queries.is_empty());
        // The paper's Query1/Query2 use dbont:writer and dbont:author; the
        // domain/range check kills writer (domain Song, ?x is a Book), so
        // the author reading must be present and executable.
        assert!(
            queries.iter().any(|q| q.sparql.contains("/author>")
                && q.sparql.contains("Orhan_Pamuk")),
            "{queries:#?}"
        );
        // Every query carries the class constraint.
        for q in &queries {
            assert!(q.sparql.contains("Book"), "{}", q.sparql);
        }
    }

    #[test]
    fn scores_are_sorted_descending() {
        let queries = queries_for("Where did Abraham Lincoln die?");
        for w in queries.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        // Top-ranked query must target deathPlace (pattern frequency).
        assert!(queries[0].sparql.contains("deathPlace"), "{}", queries[0].sparql);
    }

    #[test]
    fn data_property_orientation_forced() {
        let queries = queries_for("How tall is Michael Jordan?");
        // Entity must be the subject of the data property; centrality picks
        // the athlete, who carries the qualified IRI (the scientist namesake
        // was minted first).
        assert!(
            queries[0]
                .sparql
                .contains("Michael_Jordan_(2)> <http://dbpedia.org/ontology/height> ?x"),
            "{}",
            queries[0].sparql
        );
    }

    #[test]
    fn ask_query_for_polar_question() {
        let queries = queries_for("Is Ankara the capital of Turkey?");
        assert!(queries[0].sparql.starts_with("ASK"));
        assert!(queries[0].sparql.contains("capital"));
    }

    #[test]
    fn inverse_orientation_from_pattern_evidence() {
        // "Who wrote Snow?" — the fact runs Snow →author→ person, so the
        // winning option must place Snow as subject.
        let queries = queries_for("Who wrote Snow?");
        let best_author = queries.iter().find(|q| q.sparql.contains("/author>")).unwrap();
        assert!(
            best_author.sparql.contains("<http://dbpedia.org/resource/Snow> <http://dbpedia.org/ontology/author> ?x"),
            "{}",
            best_author.sparql
        );
    }

    #[test]
    fn queries_are_deduplicated_and_bounded() {
        let f = fixture();
        let mapper = Mapper {
            kb: &f.kb,
            wordnet: embedded(),
            patterns: &f.patterns,
            similar_pairs: &f.pairs,
            config: MappingConfig::default(),
        };
        let analysis =
            extract(&relpat_nlp::parse_sentence("Where did Abraham Lincoln die?")).unwrap();
        let mapped = mapper.map(&analysis).unwrap();
        let queries = build_queries(&f.kb, &analysis, &mapped, 3);
        assert!(queries.len() <= 3);
        let mut texts: Vec<&str> = queries.iter().map(|q| q.sparql.as_str()).collect();
        texts.sort_unstable();
        texts.dedup();
        assert_eq!(texts.len(), queries.len());
    }

    #[test]
    fn cartesian_product_over_two_relation_triples() {
        // Hand-built mapped question with two relation triples, each with two
        // candidates → 4 combinations, scored by the product of weights.
        use crate::mapping::{CandidateSource, MappedSlot, PropertyCandidate, ResolvedEntity};
        let f = fixture();
        let pamuk = ResolvedEntity {
            iri: relpat_rdf::Iri::new(relpat_rdf::vocab::res::iri("Orhan Pamuk")),
            label: "Orhan Pamuk".into(),
            score: 1.0,
        };
        let cand = |prop: &str, w: f64| PropertyCandidate {
            property: prop.into(),
            is_data: false,
            preferred_inverse: Some(false),
            weight: w,
            source: CandidateSource::RelationalPattern,
        };
        let mapped = crate::mapping::MappedQuestion {
            triples: vec![
                crate::mapping::MappedTriple::Relation {
                    subject: MappedSlot::Var,
                    object: MappedSlot::Entity(pamuk.clone()),
                    candidates: vec![cand("author", 10.0), cand("publisher", 2.0)],
                },
                crate::mapping::MappedTriple::Relation {
                    subject: MappedSlot::Var,
                    object: MappedSlot::Entity(pamuk),
                    candidates: vec![cand("author", 5.0), cand("publisher", 1.0)],
                },
            ],
        };
        let analysis = extract(&relpat_nlp::parse_sentence(
            "Which book is written by Orhan Pamuk?",
        ))
        .unwrap();
        let queries = build_queries(&f.kb, &analysis, &mapped, 50);
        assert!(!queries.is_empty());
        // Highest score must be the product of the two best candidates
        // (10 × 5, possibly dampened by orientation factors ≤ 1).
        assert!(queries[0].score <= 50.0 + 1e-9);
        assert!(queries[0].score >= queries.last().unwrap().score);
        // Product space is bounded by the requested cap.
        let capped = build_queries(&f.kb, &analysis, &mapped, 2);
        assert!(capped.len() <= 2);
    }

    #[test]
    fn nan_scored_candidates_rank_without_panicking() {
        // A zero-frequency pattern feeding a 0/0 normalization yields a NaN
        // weight; ranking must stay total (`f64::total_cmp`) instead of
        // panicking in `partial_cmp().unwrap()`.
        use crate::mapping::{CandidateSource, MappedSlot, PropertyCandidate, ResolvedEntity};
        let f = fixture();
        let pamuk = ResolvedEntity {
            iri: relpat_rdf::Iri::new(relpat_rdf::vocab::res::iri("Orhan Pamuk")),
            label: "Orhan Pamuk".into(),
            score: 1.0,
        };
        let cand = |prop: &str, w: f64| PropertyCandidate {
            property: prop.into(),
            is_data: false,
            preferred_inverse: Some(false),
            weight: w,
            source: CandidateSource::RelationalPattern,
        };
        let mapped = crate::mapping::MappedQuestion {
            triples: vec![crate::mapping::MappedTriple::Relation {
                subject: MappedSlot::Var,
                object: MappedSlot::Entity(pamuk),
                candidates: vec![cand("author", f64::NAN), cand("writer", 1.0)],
            }],
        };
        let analysis = extract(&relpat_nlp::parse_sentence(
            "Which book is written by Orhan Pamuk?",
        ))
        .unwrap();
        let queries = build_queries(&f.kb, &analysis, &mapped, 50);
        // No panic, and the finite-scored readings are all still present.
        assert!(queries.iter().any(|q| q.score == 1.0), "{queries:#?}");
        for w in queries.windows(2) {
            // Ordering stays total even with NaN in the mix.
            assert_ne!(w[0].score.total_cmp(&w[1].score), std::cmp::Ordering::Less);
        }
    }

    #[test]
    fn relation_with_no_consistent_reading_voids_the_query_set() {
        // A candidate whose domain/range cannot fit either orientation must
        // yield zero queries (the question falls back to "not attempted").
        use crate::mapping::{CandidateSource, MappedSlot, PropertyCandidate, ResolvedEntity};
        let f = fixture();
        let turkey = ResolvedEntity {
            iri: relpat_rdf::Iri::new(relpat_rdf::vocab::res::iri("Turkey")),
            label: "Turkey".into(),
            score: 1.0,
        };
        let mapped = crate::mapping::MappedQuestion {
            triples: vec![crate::mapping::MappedTriple::Relation {
                subject: MappedSlot::Entity(turkey.clone()),
                object: MappedSlot::Entity(turkey),
                // crosses: Bridge → River; Turkey is a Country on both sides.
                candidates: vec![PropertyCandidate {
                    property: "crosses".into(),
                    is_data: false,
                    preferred_inverse: None,
                    weight: 5.0,
                    source: CandidateSource::StringSimilarity,
                }],
            }],
        };
        let analysis =
            extract(&relpat_nlp::parse_sentence("Is Ankara the capital of Turkey?")).unwrap();
        assert!(build_queries(&f.kb, &analysis, &mapped, 50).is_empty());
    }

    #[test]
    fn all_queries_parse_and_execute() {
        let f = fixture();
        for question in [
            "Which book is written by Orhan Pamuk?",
            "Where did Abraham Lincoln die?",
            "How tall is Michael Jordan?",
            "What is the capital of Turkey?",
        ] {
            for q in queries_for(question) {
                f.kb.query(&q.sparql)
                    .unwrap_or_else(|e| panic!("query failed ({question}): {e}\n{}", q.sparql));
            }
        }
    }
}
