//! Candidate query construction (paper §2.3) as ranked query *planning*.
//!
//! The paper builds the full cartesian product of property-candidate
//! assignments over the mapped triples into concrete SPARQL queries, each
//! carrying a ranking score (the product of its predicates' weights,
//! §2.3.1). Both orientations of every relation are considered; the
//! ontology's domain/range declarations prune inconsistent ones, and
//! pattern-evidence direction hints dampen the disfavored orientation.
//!
//! This module replaces the blow-up-then-truncate product with a ranked
//! **beam/lattice search** over the per-triple option sets
//! ([`PlannerStrategy::Beam`], the default): assignments are expanded
//! best-first from a frontier priority queue ordered by an admissible
//! upper bound on every completion's score, so the search returns the
//! *exact* top-`max` assignments of the full product without materializing
//! it. Rendered triple-line fragments are shared across beam states — each
//! option's SPARQL line and the fixed-line prefix are rendered once and
//! reused by every assignment that selects them.
//!
//! The original cartesian builder is kept as the differential reference
//! ([`PlannerStrategy::CartesianExhaustive`]). Its historical bug — mid-fold
//! truncation by *partial* score, which could silently drop a combination
//! whose later weights would have ranked it on top — is fixed by truncating
//! on final scores only (see DESIGN.md §14 for the post-mortem).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use relpat_kb::KnowledgeBase;
use relpat_rdf::vocab::{dbont, rdf};

use crate::mapping::{MappedQuestion, MappedSlot, MappedTriple, PropertyCandidate};
use crate::triples::QuestionAnalysis;

/// A concrete candidate query with its ranking score.
#[derive(Debug, Clone, PartialEq)]
pub struct BuiltQuery {
    pub sparql: String,
    pub score: f64,
}

/// How candidate assignments are searched (§2.3 / ROADMAP item 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlannerStrategy {
    /// Exact top-`max` best-first frontier search over the assignment
    /// lattice. Never enumerates more states than needed to *prove* the
    /// ranking; worst case (all scores tied or NaN) degenerates to the full
    /// product.
    #[default]
    Beam,
    /// The paper's full cartesian product, truncated to `max` on final
    /// scores only. Exact by construction; exponential in relation-triple
    /// count. Kept as the differential reference for the beam planner.
    CartesianExhaustive,
}

impl PlannerStrategy {
    /// Short label used in journal events and reports.
    pub fn name(self) -> &'static str {
        match self {
            PlannerStrategy::Beam => "beam",
            PlannerStrategy::CartesianExhaustive => "cartesian",
        }
    }
}

/// What the planner did for one question (feeds the per-question
/// [`relpat_obs::QuestionTrace`] and the global `qa.plan.*` counters).
///
/// Semantics per strategy — `Beam`: `expanded` counts frontier states
/// popped and branched, `pruned` counts states generated but still in the
/// frontier when the search proved the top-`max` (never explored),
/// `emitted` counts complete assignments surfaced. `CartesianExhaustive`:
/// `expanded` counts partial and complete combinations materialized by the
/// fold, `pruned` counts full combinations discarded by the final
/// truncation, `emitted` counts combinations kept.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    pub expanded: u64,
    pub pruned: u64,
    pub emitted: u64,
}

/// One resolved relation triple option (property + orientation). The
/// rendered `line` is shared by every assignment that selects this option.
#[derive(Debug, Clone)]
struct TripleOption {
    line: String,
    weight: f64,
}

/// Builds ranked candidate queries with the default [`PlannerStrategy::Beam`]
/// planner. Returns at most `max` queries, highest score first.
pub fn build_queries(
    kb: &KnowledgeBase,
    analysis: &QuestionAnalysis,
    mapped: &MappedQuestion,
    max: usize,
) -> Vec<BuiltQuery> {
    build_queries_planned(kb, analysis, mapped, max, PlannerStrategy::Beam).0
}

/// [`build_queries`] with an explicit strategy, returning the planner's
/// [`PlanStats`] alongside the ranked queries. Both strategies produce the
/// identical query list (the differential guarantee CI enforces via the
/// `planning_equivalence` gate); only the work done to find it differs.
pub fn build_queries_planned(
    kb: &KnowledgeBase,
    analysis: &QuestionAnalysis,
    mapped: &MappedQuestion,
    max: usize,
    strategy: PlannerStrategy,
) -> (Vec<BuiltQuery>, PlanStats) {
    let max = max.max(1);
    let mut fixed_lines: Vec<String> = Vec::new();
    let mut option_sets: Vec<Vec<TripleOption>> = Vec::new();
    // Class constraints from the Type triples, used for domain/range checks.
    let var_class: Option<&str> = mapped.triples.iter().find_map(|t| match t {
        MappedTriple::Type { class } => Some(class.as_str()),
        _ => None,
    });

    for triple in &mapped.triples {
        match triple {
            MappedTriple::Type { class } => {
                fixed_lines.push(format!("?x <{}> <{}> .", rdf::TYPE, dbont::iri(class)));
            }
            MappedTriple::Relation { subject, object, candidates } => {
                let mut options = Vec::new();
                for c in candidates {
                    for inverse in [false, true] {
                        if let Some(opt) =
                            triple_option(kb, subject, object, c, inverse, var_class)
                        {
                            options.push(opt);
                        }
                    }
                }
                if options.is_empty() {
                    // No consistent reading of this triple.
                    return (Vec::new(), PlanStats::default());
                }
                option_sets.push(options);
            }
        }
    }

    let (combos, mut stats) = match strategy {
        PlannerStrategy::Beam => beam_topk(&option_sets, max),
        PlannerStrategy::CartesianExhaustive => cartesian_topk(&option_sets, max),
    };
    let out = render_combos(analysis, &fixed_lines, &option_sets, &combos);
    stats.emitted = out.len() as u64;

    relpat_obs::counter!("qa.plan.expanded", stats.expanded);
    relpat_obs::counter!("qa.plan.pruned", stats.pruned);
    relpat_obs::counter!("qa.plan.emitted", stats.emitted);
    relpat_obs::jevent!(
        relpat_obs::Level::Debug, "qa.plan",
        "strategy" => strategy.name(),
        "expanded" => stats.expanded,
        "pruned" => stats.pruned,
        "emitted" => stats.emitted,
    );
    (out, stats)
}

/// One frontier state of the beam search: the option choices made so far
/// (`indices`, one per already-assigned relation triple, in triple order),
/// the exact partial score of those choices, and an admissible upper bound
/// on the score of any completion.
///
/// Heap order: higher bound first; equal bounds tie-break toward the
/// lexicographically smaller index prefix so exploration — and therefore
/// the emission order of equal-scored assignments — is deterministic and
/// matches the cartesian reference's generation order (the "IRI
/// tie-break": earlier-listed candidates/orientations win ties).
struct Frontier {
    bound: f64,
    score: f64,
    indices: Vec<u32>,
}

impl PartialEq for Frontier {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Frontier {}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound
            .total_cmp(&other.bound)
            .then_with(|| other.indices.cmp(&self.indices))
    }
}

/// Admissible upper bound on every completion of a partial score through
/// the remaining option sets, each abstracted to its `(min, max)` weight
/// range (under `total_cmp`, so NaN — canonicalized positive in
/// [`triple_option`] — saturates the range and disables pruning rather
/// than corrupting it).
///
/// The interval is folded **left-associated, one set at a time**, exactly
/// like the score accumulation itself. IEEE-754 multiplication is weakly
/// monotone in each operand, so the running `[lo, hi]` interval bounds
/// every reachable left-associated partial product bit-for-bit — the bound
/// can never round below an achievable score, which is what makes the
/// frontier search exact in floating point, not just over the reals.
/// Negative weights are handled by tracking both interval ends.
fn completion_bound(score: f64, ranges: &[(f64, f64)]) -> f64 {
    let (mut lo, mut hi) = (score, score);
    for &(wlo, whi) in ranges {
        let mut nlo = lo * wlo;
        let mut nhi = nlo;
        for c in [lo * whi, hi * wlo, hi * whi] {
            if c.total_cmp(&nlo) == Ordering::Less {
                nlo = c;
            }
            if c.total_cmp(&nhi) == Ordering::Greater {
                nhi = c;
            }
        }
        (lo, hi) = (nlo, nhi);
    }
    hi
}

/// Exact top-`max` assignments over the option-set lattice, best-first.
///
/// Scores are products of per-triple weights; a frontier state's priority
/// is [`completion_bound`], an admissible upper bound, so when the
/// `max`-th best complete assignment's score strictly exceeds every
/// remaining frontier bound the search has *proved* the top-`max` and
/// stops — everything still in the frontier is pruned unexplored. Ties at
/// the cutoff keep the search running (equal-scored assignments must be
/// collected so the deterministic index tie-break picks the same winners
/// as the exhaustive reference); in the degenerate all-tied case this
/// falls back to enumerating the full product, never worse than the
/// cartesian strategy.
///
/// Returns assignments sorted by (score descending under `total_cmp`,
/// index vector ascending), truncated to `max`.
fn beam_topk(option_sets: &[Vec<TripleOption>], max: usize) -> (Vec<(Vec<u32>, f64)>, PlanStats) {
    let n = option_sets.len();
    let ranges: Vec<(f64, f64)> = option_sets
        .iter()
        .map(|set| {
            let (mut lo, mut hi) = (set[0].weight, set[0].weight);
            for o in &set[1..] {
                if o.weight.total_cmp(&lo) == Ordering::Less {
                    lo = o.weight;
                }
                if o.weight.total_cmp(&hi) == Ordering::Greater {
                    hi = o.weight;
                }
            }
            (lo, hi)
        })
        .collect();

    let mut heap = BinaryHeap::new();
    heap.push(Frontier { bound: completion_bound(1.0, &ranges), score: 1.0, indices: Vec::new() });
    let mut complete: Vec<(Vec<u32>, f64)> = Vec::new();
    let mut stats = PlanStats::default();
    loop {
        // Termination: the k-th best complete score beats every remaining
        // bound (strictly — equal bounds may still complete into tie-mates
        // that the index tie-break ranks ahead).
        if complete.len() >= max {
            let kth = complete[max - 1].1;
            match heap.peek() {
                None => break,
                Some(top) if top.bound.total_cmp(&kth) == Ordering::Less => break,
                _ => {}
            }
        }
        let Some(state) = heap.pop() else { break };
        let depth = state.indices.len();
        if depth == n {
            // Complete states pop in (score desc, indices asc) order among
            // themselves: their bound equals their exact score.
            complete.push((state.indices, state.score));
            continue;
        }
        stats.expanded += 1;
        for (i, opt) in option_sets[depth].iter().enumerate() {
            let score = state.score * opt.weight;
            let mut indices = Vec::with_capacity(depth + 1);
            indices.extend_from_slice(&state.indices);
            indices.push(i as u32);
            let bound = completion_bound(score, &ranges[depth + 1..]);
            heap.push(Frontier { bound, score, indices });
        }
    }
    stats.pruned = heap.len() as u64;
    // Interleaved incomplete states can emit a smaller-indexed tie-mate
    // after a larger-indexed equal-scored one; canonicalize.
    complete.sort_by(|(ia, a), (ib, b)| b.total_cmp(a).then_with(|| ia.cmp(ib)));
    complete.truncate(max);
    (complete, stats)
}

/// The paper's cartesian product, kept as the differential reference.
///
/// Materializes every combination and truncates to `max` **on final scores
/// only**. The previous implementation truncated mid-fold by partial
/// score, which is unsound: a combination's rank after later triples'
/// weights multiply in is unrelated to its partial rank (negative or tied
/// weights invert it outright), so an eventually-top-ranked combination
/// could be silently dropped and the output was not an exact top-`max` of
/// the product.
fn cartesian_topk(
    option_sets: &[Vec<TripleOption>],
    max: usize,
) -> (Vec<(Vec<u32>, f64)>, PlanStats) {
    let mut combos: Vec<(Vec<u32>, f64)> = vec![(Vec::new(), 1.0)];
    let mut stats = PlanStats { expanded: 1, ..PlanStats::default() };
    for set in option_sets {
        let mut next = Vec::with_capacity(combos.len() * set.len());
        for (indices, score) in &combos {
            for (i, opt) in set.iter().enumerate() {
                let mut idx = Vec::with_capacity(indices.len() + 1);
                idx.extend_from_slice(indices);
                idx.push(i as u32);
                next.push((idx, score * opt.weight));
            }
        }
        combos = next;
        stats.expanded += combos.len() as u64;
    }
    // Stable sort: equal scores keep lexicographic generation order — the
    // same deterministic tie-break as the beam planner.
    combos.sort_by(|(_, a), (_, b)| b.total_cmp(a));
    stats.pruned = combos.len().saturating_sub(max) as u64;
    combos.truncate(max);
    (combos, stats)
}

/// Renders ranked assignments into SPARQL. The fixed-line prefix is
/// rendered once and shared; each option's line was rendered once at
/// option construction. Adjacent duplicates (same SPARQL text) collapse to
/// the highest-ranked occurrence.
fn render_combos(
    analysis: &QuestionAnalysis,
    fixed_lines: &[String],
    option_sets: &[Vec<TripleOption>],
    combos: &[(Vec<u32>, f64)],
) -> Vec<BuiltQuery> {
    let prefix = fixed_lines.join(" ");
    let mut out: Vec<BuiltQuery> = combos
        .iter()
        .map(|(indices, score)| {
            let mut body = prefix.clone();
            for (set, &i) in option_sets.iter().zip(indices.iter()) {
                if !body.is_empty() {
                    body.push(' ');
                }
                body.push_str(&set[i as usize].line);
            }
            let sparql = if analysis.ask {
                format!("ASK {{ {body} }}")
            } else {
                format!("SELECT DISTINCT ?x WHERE {{ {body} }}")
            };
            BuiltQuery { sparql, score: *score }
        })
        .collect();
    out.dedup_by(|a, b| a.sparql == b.sparql);
    out
}

/// Renders one (candidate, orientation) pair as a SPARQL triple line, or
/// `None` when the ontology's domain/range rules it out.
fn triple_option(
    kb: &KnowledgeBase,
    subject: &MappedSlot,
    object: &MappedSlot,
    candidate: &PropertyCandidate,
    inverse: bool,
    var_class: Option<&str>,
) -> Option<TripleOption> {
    let (eff_subject, eff_object) =
        if inverse { (object, subject) } else { (subject, object) };

    // Direction-hint dampening.
    let orientation_factor = match candidate.preferred_inverse {
        Some(pref) if pref == inverse => 1.0,
        Some(_) => 0.25,
        None => {
            if inverse {
                0.9
            } else {
                1.0
            }
        }
    };
    // Canonicalize NaN weights (0/0 pattern normalizations) to the positive
    // quiet NaN so `total_cmp` ranks every NaN state identically and the
    // planner's completion bounds saturate instead of mis-pruning.
    let weight = candidate.weight * orientation_factor;
    let weight = if weight.is_nan() { f64::NAN } else { weight };

    let prop_iri = dbont::iri(&candidate.property);
    if candidate.is_data {
        // Data property: the literal side must be the variable, the subject
        // side an entity (or typed variable within the domain).
        if !matches!(eff_object, MappedSlot::Var) {
            return None;
        }
        let def = kb.ontology.data_properties.iter().find(|p| p.name == candidate.property)?;
        if !slot_compatible(kb, eff_subject, def.domain, var_class) {
            return None;
        }
        let s = render_slot(eff_subject);
        return Some(TripleOption { line: format!("{s} <{prop_iri}> ?x ."), weight });
    }

    let def = kb.ontology.object_properties.iter().find(|p| p.name == candidate.property)?;
    if !slot_compatible(kb, eff_subject, def.domain, var_class)
        || !slot_compatible(kb, eff_object, def.range, var_class)
    {
        return None;
    }
    let s = render_slot(eff_subject);
    let o = render_slot(eff_object);
    Some(TripleOption { line: format!("{s} <{prop_iri}> {o} ."), weight })
}

/// Domain/range compatibility: an entity slot must carry a class related to
/// the declared one (either direction along the taxonomy); a variable slot
/// is checked against the question's `rdf:type` constraint when present.
fn slot_compatible(
    kb: &KnowledgeBase,
    slot: &MappedSlot,
    declared: &str,
    var_class: Option<&str>,
) -> bool {
    let classes: Vec<String> = match slot {
        MappedSlot::Var => match var_class {
            Some(c) => vec![c.to_string()],
            None => return true,
        },
        MappedSlot::Entity(e) => {
            let cs = kb.classes_of(&e.iri);
            if cs.is_empty() {
                return true;
            }
            cs
        }
    };
    classes.iter().any(|c| {
        kb.ontology.is_subclass_of(c, declared) || kb.ontology.is_subclass_of(declared, c)
    })
}

fn render_slot(slot: &MappedSlot) -> String {
    match slot {
        MappedSlot::Var => "?x".to_string(),
        MappedSlot::Entity(e) => format!("<{}>", e.iri.as_str()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{similar_property_pairs, Mapper, MappingConfig};
    use crate::triples::extract;
    use relpat_kb::{generate, KbConfig, KnowledgeBase};
    use relpat_patterns::{mine, CorpusConfig, PatternStore};
    use relpat_wordnet::embedded;
    use relpat_obs::fx::FxHashMap;
    use std::sync::OnceLock;

    struct Fixture {
        kb: KnowledgeBase,
        patterns: PatternStore,
        pairs: FxHashMap<String, Vec<(String, f64)>>,
    }

    fn fixture() -> &'static Fixture {
        static F: OnceLock<Fixture> = OnceLock::new();
        F.get_or_init(|| {
            let kb = generate(&KbConfig::tiny());
            let mined = mine(&kb, &CorpusConfig::default());
            let pairs = similar_property_pairs(&kb, embedded());
            Fixture { kb, patterns: mined.store, pairs }
        })
    }

    fn queries_for(question: &str) -> Vec<BuiltQuery> {
        let f = fixture();
        let mapper = Mapper {
            kb: &f.kb,
            wordnet: embedded(),
            patterns: &f.patterns,
            similar_pairs: &f.pairs,
            config: MappingConfig::default(),
        };
        let analysis = extract(&relpat_nlp::parse_sentence(question)).unwrap();
        let mapped = mapper.map(&analysis).unwrap();
        build_queries(&f.kb, &analysis, &mapped, 50)
    }

    #[test]
    fn figure1_generates_the_papers_two_queries() {
        let queries = queries_for("Which book is written by Orhan Pamuk?");
        assert!(!queries.is_empty());
        // The paper's Query1/Query2 use dbont:writer and dbont:author; the
        // domain/range check kills writer (domain Song, ?x is a Book), so
        // the author reading must be present and executable.
        assert!(
            queries.iter().any(|q| q.sparql.contains("/author>")
                && q.sparql.contains("Orhan_Pamuk")),
            "{queries:#?}"
        );
        // Every query carries the class constraint.
        for q in &queries {
            assert!(q.sparql.contains("Book"), "{}", q.sparql);
        }
    }

    #[test]
    fn scores_are_sorted_descending() {
        let queries = queries_for("Where did Abraham Lincoln die?");
        for w in queries.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        // Top-ranked query must target deathPlace (pattern frequency).
        assert!(queries[0].sparql.contains("deathPlace"), "{}", queries[0].sparql);
    }

    #[test]
    fn data_property_orientation_forced() {
        let queries = queries_for("How tall is Michael Jordan?");
        // Entity must be the subject of the data property; centrality picks
        // the athlete, who carries the qualified IRI (the scientist namesake
        // was minted first).
        assert!(
            queries[0]
                .sparql
                .contains("Michael_Jordan_(2)> <http://dbpedia.org/ontology/height> ?x"),
            "{}",
            queries[0].sparql
        );
    }

    #[test]
    fn ask_query_for_polar_question() {
        let queries = queries_for("Is Ankara the capital of Turkey?");
        assert!(queries[0].sparql.starts_with("ASK"));
        assert!(queries[0].sparql.contains("capital"));
    }

    #[test]
    fn inverse_orientation_from_pattern_evidence() {
        // "Who wrote Snow?" — the fact runs Snow →author→ person, so the
        // winning option must place Snow as subject.
        let queries = queries_for("Who wrote Snow?");
        let best_author = queries.iter().find(|q| q.sparql.contains("/author>")).unwrap();
        assert!(
            best_author.sparql.contains("<http://dbpedia.org/resource/Snow> <http://dbpedia.org/ontology/author> ?x"),
            "{}",
            best_author.sparql
        );
    }

    #[test]
    fn queries_are_deduplicated_and_bounded() {
        let f = fixture();
        let mapper = Mapper {
            kb: &f.kb,
            wordnet: embedded(),
            patterns: &f.patterns,
            similar_pairs: &f.pairs,
            config: MappingConfig::default(),
        };
        let analysis =
            extract(&relpat_nlp::parse_sentence("Where did Abraham Lincoln die?")).unwrap();
        let mapped = mapper.map(&analysis).unwrap();
        let queries = build_queries(&f.kb, &analysis, &mapped, 3);
        assert!(queries.len() <= 3);
        let mut texts: Vec<&str> = queries.iter().map(|q| q.sparql.as_str()).collect();
        texts.sort_unstable();
        texts.dedup();
        assert_eq!(texts.len(), queries.len());
    }

    #[test]
    fn cartesian_product_over_two_relation_triples() {
        // Hand-built mapped question with two relation triples, each with two
        // candidates → 4 combinations, scored by the product of weights.
        use crate::mapping::{CandidateSource, MappedSlot, PropertyCandidate, ResolvedEntity};
        let f = fixture();
        let pamuk = ResolvedEntity {
            iri: relpat_rdf::Iri::new(relpat_rdf::vocab::res::iri("Orhan Pamuk")),
            label: "Orhan Pamuk".into(),
            score: 1.0,
        };
        let cand = |prop: &str, w: f64| PropertyCandidate {
            property: prop.into(),
            is_data: false,
            preferred_inverse: Some(false),
            weight: w,
            source: CandidateSource::RelationalPattern,
        };
        let mapped = crate::mapping::MappedQuestion {
            triples: vec![
                crate::mapping::MappedTriple::Relation {
                    subject: MappedSlot::Var,
                    object: MappedSlot::Entity(pamuk.clone()),
                    candidates: vec![cand("author", 10.0), cand("publisher", 2.0)],
                },
                crate::mapping::MappedTriple::Relation {
                    subject: MappedSlot::Var,
                    object: MappedSlot::Entity(pamuk),
                    candidates: vec![cand("author", 5.0), cand("publisher", 1.0)],
                },
            ],
        };
        let analysis = extract(&relpat_nlp::parse_sentence(
            "Which book is written by Orhan Pamuk?",
        ))
        .unwrap();
        let queries = build_queries(&f.kb, &analysis, &mapped, 50);
        assert!(!queries.is_empty());
        // Highest score must be the product of the two best candidates
        // (10 × 5, possibly dampened by orientation factors ≤ 1).
        assert!(queries[0].score <= 50.0 + 1e-9);
        assert!(queries[0].score >= queries.last().unwrap().score);
        // Product space is bounded by the requested cap.
        let capped = build_queries(&f.kb, &analysis, &mapped, 2);
        assert!(capped.len() <= 2);
    }

    #[test]
    fn beam_matches_cartesian_on_pipeline_questions() {
        let f = fixture();
        let mapper = Mapper {
            kb: &f.kb,
            wordnet: embedded(),
            patterns: &f.patterns,
            similar_pairs: &f.pairs,
            config: MappingConfig::default(),
        };
        for question in [
            "Which book is written by Orhan Pamuk?",
            "Where did Abraham Lincoln die?",
            "How tall is Michael Jordan?",
            "Is Ankara the capital of Turkey?",
            "Who wrote Snow?",
        ] {
            let analysis = extract(&relpat_nlp::parse_sentence(question)).unwrap();
            let mapped = mapper.map(&analysis).unwrap();
            for max in [1, 2, 3, 50] {
                let (beam, _) = build_queries_planned(
                    &f.kb, &analysis, &mapped, max, PlannerStrategy::Beam,
                );
                let (cart, _) = build_queries_planned(
                    &f.kb, &analysis, &mapped, max, PlannerStrategy::CartesianExhaustive,
                );
                assert_eq!(beam, cart, "{question} max={max}");
            }
        }
    }

    #[test]
    fn truncation_cannot_drop_an_eventually_top_combination() {
        // Regression for the bounded-product ranking bug: with `max = 2`,
        // the old fold kept only the two best *partial* scores after the
        // first triple (publisher 5, director 4) and dropped author (−10) —
        // whose product with the second triple's author (−8) is the global
        // maximum (+80). Truncating on final scores (cartesian) or bounding
        // the frontier admissibly (beam) must both keep it.
        use crate::mapping::{CandidateSource, MappedSlot, PropertyCandidate, ResolvedEntity};
        let f = fixture();
        let pamuk = ResolvedEntity {
            iri: relpat_rdf::Iri::new(relpat_rdf::vocab::res::iri("Orhan Pamuk")),
            label: "Orhan Pamuk".into(),
            score: 1.0,
        };
        let cand = |prop: &str, w: f64| PropertyCandidate {
            property: prop.into(),
            is_data: false,
            preferred_inverse: Some(false),
            weight: w,
            source: CandidateSource::RelationalPattern,
        };
        let mapped = crate::mapping::MappedQuestion {
            triples: vec![
                crate::mapping::MappedTriple::Relation {
                    subject: MappedSlot::Var,
                    object: MappedSlot::Entity(pamuk.clone()),
                    candidates: vec![
                        cand("author", -10.0),
                        cand("publisher", 5.0),
                        cand("director", 4.0),
                    ],
                },
                crate::mapping::MappedTriple::Relation {
                    subject: MappedSlot::Var,
                    object: MappedSlot::Entity(pamuk),
                    candidates: vec![cand("author", -8.0), cand("publisher", 1.0)],
                },
            ],
        };
        let analysis = extract(&relpat_nlp::parse_sentence(
            "Which book is written by Orhan Pamuk?",
        ))
        .unwrap();
        for strategy in [PlannerStrategy::Beam, PlannerStrategy::CartesianExhaustive] {
            let (queries, _) = build_queries_planned(&f.kb, &analysis, &mapped, 2, strategy);
            assert!(
                (queries[0].score - 80.0).abs() < 1e-9,
                "{strategy:?} dropped the (-10 × -8) combination: {queries:#?}"
            );
            assert!(
                queries[0].sparql.matches("/author>").count() == 2,
                "{strategy:?}: {}",
                queries[0].sparql
            );
        }
    }

    #[test]
    fn beam_prunes_states_the_cartesian_product_materializes() {
        // A wide two-triple lattice with a clear ranking: the beam search
        // must prove the top-3 without expanding everything the cartesian
        // fold materializes, and both must emit the identical queries.
        use crate::mapping::{CandidateSource, MappedSlot, PropertyCandidate, ResolvedEntity};
        let f = fixture();
        let pamuk = ResolvedEntity {
            iri: relpat_rdf::Iri::new(relpat_rdf::vocab::res::iri("Orhan Pamuk")),
            label: "Orhan Pamuk".into(),
            score: 1.0,
        };
        let props = ["author", "publisher", "director", "starring", "capital", "spouse"];
        let cands = |base: f64| -> Vec<PropertyCandidate> {
            props
                .iter()
                .enumerate()
                .map(|(i, p)| PropertyCandidate {
                    property: (*p).into(),
                    is_data: false,
                    preferred_inverse: Some(false),
                    weight: base / (i + 1) as f64,
                    source: CandidateSource::RelationalPattern,
                })
                .collect()
        };
        let relation = |c: Vec<PropertyCandidate>| crate::mapping::MappedTriple::Relation {
            subject: MappedSlot::Var,
            object: MappedSlot::Entity(pamuk.clone()),
            candidates: c,
        };
        let mapped = crate::mapping::MappedQuestion {
            triples: vec![relation(cands(64.0)), relation(cands(32.0))],
        };
        let analysis = extract(&relpat_nlp::parse_sentence(
            "Which book is written by Orhan Pamuk?",
        ))
        .unwrap();
        let (beam, beam_stats) =
            build_queries_planned(&f.kb, &analysis, &mapped, 3, PlannerStrategy::Beam);
        let (cart, cart_stats) = build_queries_planned(
            &f.kb, &analysis, &mapped, 3, PlannerStrategy::CartesianExhaustive,
        );
        assert_eq!(beam, cart);
        assert_eq!(beam.len(), 3);
        assert!(
            beam_stats.expanded < cart_stats.expanded,
            "beam {beam_stats:?} vs cartesian {cart_stats:?}"
        );
        assert!(beam_stats.pruned > 0, "{beam_stats:?}");
        assert_eq!(beam_stats.emitted, 3);
    }

    #[test]
    fn nan_scored_candidates_rank_without_panicking() {
        // A zero-frequency pattern feeding a 0/0 normalization yields a NaN
        // weight; ranking must stay total (`f64::total_cmp`) instead of
        // panicking in `partial_cmp().unwrap()`.
        use crate::mapping::{CandidateSource, MappedSlot, PropertyCandidate, ResolvedEntity};
        let f = fixture();
        let pamuk = ResolvedEntity {
            iri: relpat_rdf::Iri::new(relpat_rdf::vocab::res::iri("Orhan Pamuk")),
            label: "Orhan Pamuk".into(),
            score: 1.0,
        };
        let cand = |prop: &str, w: f64| PropertyCandidate {
            property: prop.into(),
            is_data: false,
            preferred_inverse: Some(false),
            weight: w,
            source: CandidateSource::RelationalPattern,
        };
        let mapped = crate::mapping::MappedQuestion {
            triples: vec![crate::mapping::MappedTriple::Relation {
                subject: MappedSlot::Var,
                object: MappedSlot::Entity(pamuk),
                candidates: vec![cand("author", f64::NAN), cand("writer", 1.0)],
            }],
        };
        let analysis = extract(&relpat_nlp::parse_sentence(
            "Which book is written by Orhan Pamuk?",
        ))
        .unwrap();
        let queries = build_queries(&f.kb, &analysis, &mapped, 50);
        // No panic, and the finite-scored readings are all still present.
        assert!(queries.iter().any(|q| q.score == 1.0), "{queries:#?}");
        for w in queries.windows(2) {
            // Ordering stays total even with NaN in the mix.
            assert_ne!(w[0].score.total_cmp(&w[1].score), std::cmp::Ordering::Less);
        }
    }

    #[test]
    fn relation_with_no_consistent_reading_voids_the_query_set() {
        // A candidate whose domain/range cannot fit either orientation must
        // yield zero queries (the question falls back to "not attempted").
        use crate::mapping::{CandidateSource, MappedSlot, PropertyCandidate, ResolvedEntity};
        let f = fixture();
        let turkey = ResolvedEntity {
            iri: relpat_rdf::Iri::new(relpat_rdf::vocab::res::iri("Turkey")),
            label: "Turkey".into(),
            score: 1.0,
        };
        let mapped = crate::mapping::MappedQuestion {
            triples: vec![crate::mapping::MappedTriple::Relation {
                subject: MappedSlot::Entity(turkey.clone()),
                object: MappedSlot::Entity(turkey),
                // crosses: Bridge → River; Turkey is a Country on both sides.
                candidates: vec![PropertyCandidate {
                    property: "crosses".into(),
                    is_data: false,
                    preferred_inverse: None,
                    weight: 5.0,
                    source: CandidateSource::StringSimilarity,
                }],
            }],
        };
        let analysis =
            extract(&relpat_nlp::parse_sentence("Is Ankara the capital of Turkey?")).unwrap();
        assert!(build_queries(&f.kb, &analysis, &mapped, 50).is_empty());
    }

    #[test]
    fn all_queries_parse_and_execute() {
        let f = fixture();
        for question in [
            "Which book is written by Orhan Pamuk?",
            "Where did Abraham Lincoln die?",
            "How tall is Michael Jordan?",
            "What is the capital of Turkey?",
        ] {
            for q in queries_for(question) {
                f.kb.query(&q.sparql)
                    .unwrap_or_else(|e| panic!("query failed ({question}): {e}\n{}", q.sparql));
            }
        }
    }
}
