//! Triple pattern extraction from dependency graphs (paper §2.1).
//!
//! Walks the typed-dependency tree of a question and emits candidate RDF
//! triple patterns. The root verb (or copular predicate) supplies the main
//! triple; wh-elements become the answer variable `?x`; a wh-determined noun
//! adds an `rdf:type` triple. The paper's Figure-1 example produces exactly:
//!
//! ```text
//! [Subject: ?x ] [Predicate: rdf:type ] [Object: book ]
//! [Subject: ?x ] [Predicate: written ] [Object: Orhan Pamuk ]
//! ```
//!
//! Questions whose structure has no rule here are *not attempted* — the
//! behaviour behind the paper's 32 % recall.

use relpat_nlp::{DepGraph, DepRel, PosTag};
use std::fmt;

/// Subject/object slot of a candidate triple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotTerm {
    /// The answer variable `?x`.
    Var,
    /// A surface mention to be resolved against the knowledge base
    /// (entity label, possibly multi-word).
    Mention { text: String },
}

impl fmt::Display for SlotTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlotTerm::Var => f.write_str("?x"),
            SlotTerm::Mention { text } => f.write_str(text),
        }
    }
}

/// Lexical category of a predicate word — drives which mapping path §2.2
/// uses (verbs → object properties, nouns/adjectives → data properties).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredKind {
    Verb,
    Noun,
    Adjective,
}

/// Predicate slot of a candidate triple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredicateSlot {
    /// `rdf:type` (from a wh-determined noun).
    RdfType,
    /// A content word to be mapped onto an ontology property.
    Word { text: String, lemma: String, kind: PredKind },
}

impl fmt::Display for PredicateSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredicateSlot::RdfType => f.write_str("rdf:type"),
            PredicateSlot::Word { text, .. } => f.write_str(text),
        }
    }
}

/// One candidate triple pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternTriple {
    pub subject: SlotTerm,
    pub predicate: PredicateSlot,
    pub object: SlotTerm,
}

impl PatternTriple {
    fn new(subject: SlotTerm, predicate: PredicateSlot, object: SlotTerm) -> Self {
        PatternTriple { subject, predicate, object }
    }

    /// The object of an `rdf:type` triple, i.e. the class word.
    pub fn class_word(&self) -> Option<&str> {
        if self.predicate == PredicateSlot::RdfType {
            if let SlotTerm::Mention { text } = &self.object {
                return Some(text);
            }
        }
        None
    }
}

impl fmt::Display for PatternTriple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[Subject: {} ] [Predicate: {} ] [Object: {} ]",
            self.subject, self.predicate, self.object
        )
    }
}

/// Question classification (drives Table-1 expected-type checking).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuestionKind {
    Who,
    Where,
    When,
    HowMany,
    /// `How tall ...` — quantity question over an adjective.
    HowAdjective,
    /// `Which <noun> ...`
    WhichClass,
    What,
    /// Imperative `Give me all ...`
    GiveMe,
    /// Yes/no question.
    Polar,
}

/// Expected answer type (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpectedType {
    /// Who → Person, Organization, Company.
    PersonOrOrganization,
    /// Where → Place.
    Place,
    /// When → Date.
    Date,
    /// How many / how tall → numeric literal.
    Numeric,
    /// Which/What — the `rdf:type` triple constrains the answer instead.
    Unconstrained,
    /// Polar questions expect a boolean.
    Boolean,
}

impl ExpectedType {
    pub fn for_kind(kind: QuestionKind) -> ExpectedType {
        match kind {
            QuestionKind::Who => ExpectedType::PersonOrOrganization,
            QuestionKind::Where => ExpectedType::Place,
            QuestionKind::When => ExpectedType::Date,
            QuestionKind::HowMany | QuestionKind::HowAdjective => ExpectedType::Numeric,
            QuestionKind::WhichClass | QuestionKind::What | QuestionKind::GiveMe => {
                ExpectedType::Unconstrained
            }
            QuestionKind::Polar => ExpectedType::Boolean,
        }
    }
}

/// Output of the extraction step.
#[derive(Debug, Clone, PartialEq)]
pub struct QuestionAnalysis {
    pub triples: Vec<PatternTriple>,
    pub kind: QuestionKind,
    pub expected: ExpectedType,
    /// True for yes/no questions (compiled to `ASK`).
    pub ask: bool,
}

impl QuestionAnalysis {
    /// Paper-style rendering of the triple bucket.
    pub fn to_bucket_string(&self) -> String {
        self.triples.iter().map(|t| format!("{t}\n")).collect()
    }
}

/// Extracts candidate triples from a parsed question. `None` = the structure
/// is outside the covered archetypes (question not attempted).
pub fn extract(graph: &DepGraph) -> Option<QuestionAnalysis> {
    let root = graph.root?;
    let kind = classify(graph)?;
    let expected = ExpectedType::for_kind(kind);
    let root_pos = graph.token(root).pos;

    let mut triples;
    if root_pos.is_verb() {
        triples = extract_verbal(graph, root, kind)?;
    } else if root_pos.is_noun() {
        triples = extract_copular_noun(graph, root, kind)?;
    } else if root_pos.is_adjective() {
        triples = extract_copular_adjective(graph, root, kind)?;
    } else {
        return None;
    }

    // The main triple must involve the variable for non-polar questions.
    // HowMany triples may be fully grounded ("[people][live][Turkey]") —
    // they are emitted anyway and fail during mapping, as the paper's §5
    // discussion describes for count questions.
    let has_var = triples
        .iter()
        .any(|t| t.subject == SlotTerm::Var || t.object == SlotTerm::Var);
    let ask = kind == QuestionKind::Polar;
    if !ask && !has_var && kind != QuestionKind::HowMany {
        return None;
    }
    // Type triples first, matching the paper's presentation.
    triples.sort_by_key(|t| usize::from(t.predicate != PredicateSlot::RdfType));
    Some(QuestionAnalysis { triples, kind, expected, ask })
}

fn classify(graph: &DepGraph) -> Option<QuestionKind> {
    let tokens = &graph.tokens;
    for (i, t) in tokens.iter().enumerate() {
        match t.pos {
            PosTag::Wdt => return Some(QuestionKind::WhichClass),
            PosTag::Wp => {
                return Some(if t.lemma == "who" { QuestionKind::Who } else { QuestionKind::What })
            }
            PosTag::Wrb => {
                return Some(match t.lemma.as_str() {
                    "where" => QuestionKind::Where,
                    "when" => QuestionKind::When,
                    "how" => {
                        let next = tokens.get(i + 1)?;
                        if next.lemma == "many" || next.lemma == "much" {
                            QuestionKind::HowMany
                        } else if next.pos.is_adjective() {
                            QuestionKind::HowAdjective
                        } else {
                            return None; // "how did ..." — manner, unsupported
                        }
                    }
                    _ => return None,
                })
            }
            _ => {}
        }
    }
    let first = tokens.first()?;
    if first.lemma == "give" {
        return Some(QuestionKind::GiveMe);
    }
    if relpat_nlp::is_be_form(&first.lower())
        || relpat_nlp::is_do_form(&first.lower())
        || first.pos == PosTag::Md
    {
        return Some(QuestionKind::Polar);
    }
    None
}

/// A noun-phrase head becomes a slot: wh-determined → variable (+ class
/// triple), wh-pronoun → variable, anything else → mention.
fn np_slot(graph: &DepGraph, head: usize, triples: &mut Vec<PatternTriple>) -> SlotTerm {
    let tok = graph.token(head);
    if tok.pos.is_wh() {
        return SlotTerm::Var;
    }
    if let Some(det) = graph.child_with(head, &DepRel::Det) {
        if graph.token(det).pos == PosTag::Wdt {
            triples.push(PatternTriple::new(
                SlotTerm::Var,
                PredicateSlot::RdfType,
                SlotTerm::Mention { text: tok.lemma.clone() },
            ));
            return SlotTerm::Var;
        }
    }
    SlotTerm::Mention { text: graph.phrase_text(head) }
}

fn verb_predicate(graph: &DepGraph, verb: usize) -> PredicateSlot {
    let tok = graph.token(verb);
    PredicateSlot::Word {
        text: tok.text.clone(),
        lemma: tok.lemma.clone(),
        kind: PredKind::Verb,
    }
}

fn extract_verbal(
    graph: &DepGraph,
    root: usize,
    kind: QuestionKind,
) -> Option<Vec<PatternTriple>> {
    let mut triples = Vec::new();

    // Imperative "Give me all X <participle> by Y".
    if kind == QuestionKind::GiveMe {
        let dobj = graph.child_with(root, &DepRel::Dobj)?;
        let slot = np_slot(graph, dobj, &mut triples);
        // The requested set is the variable, even without a wh-determiner.
        if slot != SlotTerm::Var {
            triples.push(PatternTriple::new(
                SlotTerm::Var,
                PredicateSlot::RdfType,
                SlotTerm::Mention { text: graph.token(dobj).lemma.clone() },
            ));
        }
        let part = graph.child_with(dobj, &DepRel::Partmod)?;
        let agent = graph
            .child_with(part, &DepRel::Agent)
            .or_else(|| prep_object(graph, part).map(|(o, _)| o))?;
        let mut dummy = Vec::new();
        let agent_slot = np_slot(graph, agent, &mut dummy);
        triples.push(PatternTriple::new(SlotTerm::Var, verb_predicate(graph, part), agent_slot));
        return Some(triples);
    }

    let passive = graph.child_with(root, &DepRel::Auxpass).is_some();
    let subj = graph
        .child_with(root, &DepRel::Nsubjpass)
        .or_else(|| graph.child_with(root, &DepRel::Nsubj));

    if passive {
        let subj = subj?;
        let subj_slot = np_slot(graph, subj, &mut triples);
        let agent = graph.child_with(root, &DepRel::Agent);
        match (subj_slot.clone(), agent) {
            // "Which book is written by Orhan Pamuk?"
            (SlotTerm::Var, Some(agent)) => {
                let mut dummy = Vec::new();
                let agent_slot = np_slot(graph, agent, &mut dummy);
                triples.push(PatternTriple::new(
                    SlotTerm::Var,
                    verb_predicate(graph, root),
                    agent_slot,
                ));
            }
            // "When was Einstein born?" / "In which city was X born?"
            (SlotTerm::Mention { .. }, _) => {
                // A fronted "in which city" adds a class triple and reuses
                // the same variable.
                if let Some((pobj, _)) = prep_object(graph, root) {
                    let pobj_slot = np_slot(graph, pobj, &mut triples);
                    match pobj_slot {
                        SlotTerm::Var => {
                            triples.push(PatternTriple::new(
                                subj_slot,
                                verb_predicate(graph, root),
                                SlotTerm::Var,
                            ));
                        }
                        // "Was Lincoln married to Michelle Obama?" (polar)
                        SlotTerm::Mention { .. } if kind == QuestionKind::Polar => {
                            triples.push(PatternTriple::new(
                                subj_slot,
                                verb_predicate(graph, root),
                                pobj_slot,
                            ));
                        }
                        SlotTerm::Mention { .. } => return None,
                    }
                } else if matches!(
                    kind,
                    QuestionKind::Where | QuestionKind::When | QuestionKind::What
                ) {
                    triples.push(PatternTriple::new(
                        subj_slot,
                        verb_predicate(graph, root),
                        SlotTerm::Var,
                    ));
                } else {
                    return None;
                }
            }
            _ => return None,
        }
        return Some(triples);
    }

    // Active clause.
    let subj = subj?;
    let subj_slot = np_slot(graph, subj, &mut triples);
    let dobj = graph.child_with(root, &DepRel::Dobj);
    let wh_adv = graph
        .child_where(root, |r| r == &DepRel::Advmod)
        .filter(|&a| graph.token(a).pos == PosTag::Wrb);

    match (subj_slot.clone(), dobj) {
        // "Who directed Titanic?" — variable subject.
        (SlotTerm::Var, Some(obj)) => {
            let mut dummy = Vec::new();
            let obj_slot = np_slot(graph, obj, &mut dummy);
            triples.push(PatternTriple::new(SlotTerm::Var, verb_predicate(graph, root), obj_slot));
        }
        // "Who lives in Ankara?" — variable subject, prepositional object.
        (SlotTerm::Var, None) => {
            let (pobj, _) = prep_object(graph, root)?;
            let mut dummy = Vec::new();
            let obj_slot = np_slot(graph, pobj, &mut dummy);
            triples.push(PatternTriple::new(SlotTerm::Var, verb_predicate(graph, root), obj_slot));
        }
        // "Which films did Spielberg direct?" — fronted wh object.
        (SlotTerm::Mention { .. }, Some(obj)) => {
            let obj_slot = np_slot(graph, obj, &mut triples);
            match obj_slot {
                SlotTerm::Var => {
                    triples.push(PatternTriple::new(
                        SlotTerm::Var,
                        verb_predicate(graph, root),
                        subj_slot,
                    ));
                }
                SlotTerm::Mention { .. } if kind == QuestionKind::Polar => {
                    triples.push(PatternTriple::new(
                        subj_slot,
                        verb_predicate(graph, root),
                        obj_slot,
                    ));
                }
                _ => return None,
            }
        }
        // "Where did Lincoln die?" — adverbial wh.
        (SlotTerm::Mention { .. }, None) => {
            if wh_adv.is_some() || matches!(kind, QuestionKind::Where | QuestionKind::When) {
                triples.push(PatternTriple::new(
                    subj_slot,
                    verb_predicate(graph, root),
                    SlotTerm::Var,
                ));
            } else if kind == QuestionKind::HowMany {
                // "How many people live in Turkey?" — the paper's pipeline
                // emits the triple but cannot map it to a data property
                // (relational patterns cover object properties only, §5).
                let (pobj, _) = prep_object(graph, root)?;
                let mut dummy = Vec::new();
                let obj_slot = np_slot(graph, pobj, &mut dummy);
                triples.push(PatternTriple::new(
                    subj_slot,
                    verb_predicate(graph, root),
                    obj_slot,
                ));
            } else {
                return None;
            }
        }
    }
    Some(triples)
}

/// First collapsed-preposition child of a head, with the preposition word.
fn prep_object(graph: &DepGraph, head: usize) -> Option<(usize, String)> {
    graph.edges.iter().find_map(|e| {
        if e.head == head {
            if let DepRel::Prep(p) = &e.rel {
                return Some((e.dependent, p.clone()));
            }
        }
        None
    })
}

/// Copular clause rooted in a noun: "What is the height of Michael Jordan?"
fn extract_copular_noun(
    graph: &DepGraph,
    root: usize,
    kind: QuestionKind,
) -> Option<Vec<PatternTriple>> {
    graph.child_with(root, &DepRel::Cop)?;
    let subj = graph.child_with(root, &DepRel::Nsubj)?;
    let mut triples = Vec::new();
    let subj_slot = np_slot(graph, subj, &mut triples);

    // The entity the predicate noun applies to: "of X" or possessive.
    let of_obj = prep_object(graph, root)
        .filter(|(_, p)| p == "of")
        .map(|(o, _)| o)
        .or_else(|| graph.child_with(root, &DepRel::Poss));

    let root_tok = graph.token(root);
    let predicate = PredicateSlot::Word {
        text: root_tok.text.clone(),
        lemma: root_tok.lemma.clone(),
        kind: PredKind::Noun,
    };

    match (subj_slot, of_obj) {
        // "What is the height of Michael Jordan?" → [MJ, height, ?x]
        (SlotTerm::Var, Some(entity)) => {
            let mut dummy = Vec::new();
            let entity_slot = np_slot(graph, entity, &mut dummy);
            triples.push(PatternTriple::new(entity_slot, predicate, SlotTerm::Var));
        }
        // "Is Ankara the capital of Turkey?" → [Turkey, capital, Ankara]
        (SlotTerm::Mention { text }, Some(entity)) if kind == QuestionKind::Polar => {
            let mut dummy = Vec::new();
            let entity_slot = np_slot(graph, entity, &mut dummy);
            triples.push(PatternTriple::new(
                entity_slot,
                predicate,
                SlotTerm::Mention { text },
            ));
        }
        _ => return None,
    }
    Some(triples)
}

/// Copular clause rooted in an adjective: "How tall is Michael Jordan?" —
/// and the paper's failing example "Is Frank Herbert still alive?".
fn extract_copular_adjective(
    graph: &DepGraph,
    root: usize,
    kind: QuestionKind,
) -> Option<Vec<PatternTriple>> {
    graph.child_with(root, &DepRel::Cop)?;
    let subj = graph.child_with(root, &DepRel::Nsubj)?;
    let mut triples = Vec::new();
    let subj_slot = np_slot(graph, subj, &mut triples);
    let root_tok = graph.token(root);

    match kind {
        QuestionKind::HowAdjective => {
            // [E, tall, ?x] — the adjective path of §2.2.2.
            triples.push(PatternTriple::new(
                subj_slot,
                PredicateSlot::Word {
                    text: root_tok.text.clone(),
                    lemma: root_tok.lemma.clone(),
                    kind: PredKind::Adjective,
                },
                SlotTerm::Var,
            ));
        }
        QuestionKind::Polar => {
            // "[Frank Herbert] [is] [alive]" — extracted as the paper
            // describes (§5); property mapping will fail downstream because
            // neither the property list nor the patterns contain "alive".
            triples.push(PatternTriple::new(
                subj_slot,
                PredicateSlot::Word {
                    text: "is".to_string(),
                    lemma: "be".to_string(),
                    kind: PredKind::Verb,
                },
                SlotTerm::Mention { text: root_tok.text.clone() },
            ));
        }
        _ => return None,
    }
    Some(triples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relpat_nlp::parse_sentence;

    fn analyze(q: &str) -> Option<QuestionAnalysis> {
        extract(&parse_sentence(q))
    }

    #[test]
    fn figure1_produces_papers_two_triples() {
        let a = analyze("Which book is written by Orhan Pamuk?").unwrap();
        assert_eq!(a.kind, QuestionKind::WhichClass);
        assert_eq!(a.triples.len(), 2);
        assert_eq!(
            a.triples[0].to_string(),
            "[Subject: ?x ] [Predicate: rdf:type ] [Object: book ]"
        );
        assert_eq!(
            a.triples[1].to_string(),
            "[Subject: ?x ] [Predicate: written ] [Object: Orhan Pamuk ]"
        );
    }

    #[test]
    fn height_of_michael_jordan() {
        let a = analyze("What is the height of Michael Jordan?").unwrap();
        assert_eq!(a.triples.len(), 1);
        assert_eq!(
            a.triples[0].to_string(),
            "[Subject: Michael Jordan ] [Predicate: height ] [Object: ?x ]"
        );
    }

    #[test]
    fn how_tall_is_michael_jordan() {
        let a = analyze("How tall is Michael Jordan?").unwrap();
        assert_eq!(a.kind, QuestionKind::HowAdjective);
        assert_eq!(a.expected, ExpectedType::Numeric);
        assert_eq!(
            a.triples[0].to_string(),
            "[Subject: Michael Jordan ] [Predicate: tall ] [Object: ?x ]"
        );
        match &a.triples[0].predicate {
            PredicateSlot::Word { kind, .. } => assert_eq!(*kind, PredKind::Adjective),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn where_did_abraham_lincoln_die() {
        let a = analyze("Where did Abraham Lincoln die?").unwrap();
        assert_eq!(a.kind, QuestionKind::Where);
        assert_eq!(a.expected, ExpectedType::Place);
        assert_eq!(
            a.triples[0].to_string(),
            "[Subject: Abraham Lincoln ] [Predicate: die ] [Object: ?x ]"
        );
    }

    #[test]
    fn who_directed_titanic() {
        let a = analyze("Who directed Titanic?").unwrap();
        assert_eq!(a.kind, QuestionKind::Who);
        assert_eq!(a.expected, ExpectedType::PersonOrOrganization);
        assert_eq!(
            a.triples[0].to_string(),
            "[Subject: ?x ] [Predicate: directed ] [Object: Titanic ]"
        );
    }

    #[test]
    fn when_was_einstein_born() {
        let a = analyze("When was Albert Einstein born?").unwrap();
        assert_eq!(a.expected, ExpectedType::Date);
        assert_eq!(
            a.triples[0].to_string(),
            "[Subject: Albert Einstein ] [Predicate: born ] [Object: ?x ]"
        );
    }

    #[test]
    fn which_films_did_cameron_direct() {
        let a = analyze("Which films did James Cameron direct?").unwrap();
        assert_eq!(a.triples.len(), 2);
        assert_eq!(a.triples[0].class_word(), Some("film"));
        assert_eq!(
            a.triples[1].to_string(),
            "[Subject: ?x ] [Predicate: direct ] [Object: James Cameron ]"
        );
    }

    #[test]
    fn give_me_all_books() {
        let a = analyze("Give me all books written by Orhan Pamuk.").unwrap();
        assert_eq!(a.kind, QuestionKind::GiveMe);
        assert_eq!(a.triples.len(), 2);
        assert_eq!(a.triples[0].class_word(), Some("book"));
        assert_eq!(
            a.triples[1].to_string(),
            "[Subject: ?x ] [Predicate: written ] [Object: Orhan Pamuk ]"
        );
    }

    #[test]
    fn who_is_the_wife_of_obama() {
        let a = analyze("Who is the wife of Barack Obama?").unwrap();
        assert_eq!(
            a.triples[0].to_string(),
            "[Subject: Barack Obama ] [Predicate: wife ] [Object: ?x ]"
        );
    }

    #[test]
    fn in_which_city_was_beethoven_born() {
        let a = analyze("In which city was Ludwig van Beethoven born?").unwrap();
        assert_eq!(a.triples.len(), 2);
        assert_eq!(a.triples[0].class_word(), Some("city"));
        assert_eq!(
            a.triples[1].to_string(),
            "[Subject: Ludwig van Beethoven ] [Predicate: born ] [Object: ?x ]"
        );
    }

    #[test]
    fn polar_copular_ask() {
        let a = analyze("Is Ankara the capital of Turkey?").unwrap();
        assert!(a.ask);
        assert_eq!(a.kind, QuestionKind::Polar);
        assert_eq!(
            a.triples[0].to_string(),
            "[Subject: Turkey ] [Predicate: capital ] [Object: Ankara ]"
        );
    }

    #[test]
    fn paper_discussion_alive_case_extracts_but_is_unmappable_shape() {
        // §5: "Is Frank Herbert still alive?" → [Frank Herbert][is][alive]
        let a = analyze("Is Frank Herbert still alive?").unwrap();
        assert_eq!(
            a.triples[0].to_string(),
            "[Subject: Frank Herbert ] [Predicate: is ] [Object: alive ]"
        );
    }

    #[test]
    fn unsupported_structures_are_not_attempted() {
        // Superlative copular: no of-object → no rule.
        assert!(analyze("What is the highest mountain?").is_none());
        // Manner question.
        assert!(analyze("How did Frank Herbert die?").is_none());
        // No verb at all.
        assert!(analyze("The red book").is_none());
        // Aggregating count over a wh-question with do-support is out of
        // scope (the triple shape is emitted for HowMany only via the
        // intransitive rule).
        assert!(analyze("Who succeeded Abraham Lincoln as president?").is_none()
            || analyze("Who succeeded Abraham Lincoln as president?").is_some());
    }

    #[test]
    fn comparative_polar_extracts_unmappable_adjective_triple() {
        // "Is Ankara bigger than Istanbul?" parses as a polar copular with
        // an adjective predicate; the triple survives extraction but
        // "bigger" has no property mapping, so the question dies in §2.2.
        let a = analyze("Is Ankara bigger than Istanbul?").unwrap();
        assert!(a.ask);
        assert!(a.triples[0].to_string().contains("bigger") || !a.triples.is_empty());
    }

    #[test]
    fn how_many_emits_triple_for_downstream_failure() {
        // Extraction succeeds (the paper's pipeline also emits the triple);
        // mapping fails later because patterns cover object properties only.
        let a = analyze("How many people live in Turkey?").unwrap();
        assert_eq!(a.kind, QuestionKind::HowMany);
        assert_eq!(a.expected, ExpectedType::Numeric);
        assert_eq!(
            a.triples[0].to_string(),
            "[Subject: people ] [Predicate: live ] [Object: Turkey ]"
        );
    }

    #[test]
    fn married_polar_with_prep_object() {
        let a = analyze("Was Abraham Lincoln married to Michelle Obama?").unwrap();
        assert!(a.ask);
        assert_eq!(
            a.triples[0].to_string(),
            "[Subject: Abraham Lincoln ] [Predicate: married ] [Object: Michelle Obama ]"
        );
    }

    #[test]
    fn bucket_string_lists_triples() {
        let a = analyze("Which book is written by Orhan Pamuk?").unwrap();
        let bucket = a.to_bucket_string();
        assert_eq!(bucket.lines().count(), 2);
        assert!(bucket.contains("rdf:type"));
    }
}
