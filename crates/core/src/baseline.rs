//! Baseline systems for the related-work comparison benches.
//!
//! - [`KeywordBaseline`] — a bag-of-words system with no dependency parse:
//!   spots one entity and one property word, fires a query in both
//!   directions, returns whatever comes back. High coverage, low precision:
//!   the foil for the paper's structured approach.
//! - [`TemplateBaseline`] — Unger-style (WWW'12) fixed question templates
//!   matched against the raw token stream; precise but rigid.

use relpat_kb::{normalize_label, KnowledgeBase};
use relpat_nlp::{tag_sentence, PosTag};
use relpat_rdf::vocab::dbont;
use relpat_rdf::{Iri, Term};

use crate::similarity::property_name_score;

/// A baseline answer: the produced terms, if any.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineAnswer {
    pub terms: Vec<Term>,
    pub sparql: String,
}

/// Shared helper: resolve the longest entity mention in a token stream.
fn find_entity(kb: &KnowledgeBase, words: &[String]) -> Option<(Iri, usize, usize)> {
    let n = words.len();
    for len in (1..=n.min(6)).rev() {
        for start in 0..=(n - len) {
            let span = words[start..start + len].join(" ");
            let hits = kb.entities_with_label(&normalize_label(&span));
            if !hits.is_empty() {
                return Some((hits[0].clone(), start, start + len));
            }
        }
    }
    None
}

fn run(kb: &KnowledgeBase, sparql: &str) -> Vec<Term> {
    match kb.query(sparql) {
        Ok(relpat_sparql::QueryResult::Solutions(sols)) => {
            let mut terms = Vec::new();
            for row in &sols.rows {
                for cell in row.iter().flatten() {
                    if !terms.contains(cell) {
                        terms.push(cell.clone());
                    }
                }
            }
            terms
        }
        _ => Vec::new(),
    }
}

/// Bag-of-words baseline: entity + best-matching property, both directions,
/// no parse, no type checking, no ranking beyond the similarity score.
pub struct KeywordBaseline<'kb> {
    kb: &'kb KnowledgeBase,
}

impl<'kb> KeywordBaseline<'kb> {
    pub fn new(kb: &'kb KnowledgeBase) -> Self {
        KeywordBaseline { kb }
    }

    pub fn answer(&self, question: &str) -> Option<BaselineAnswer> {
        let tokens = tag_sentence(question);
        let words: Vec<String> = tokens.iter().map(|t| t.text.clone()).collect();
        let (entity, start, end) = find_entity(self.kb, &words)?;

        // Best property by similarity against every remaining content word.
        let mut best: Option<(f64, String)> = None;
        for (i, t) in tokens.iter().enumerate() {
            if i >= start && i < end {
                continue;
            }
            if !(t.pos.is_verb() || t.pos.is_noun() || t.pos.is_adjective()) {
                continue;
            }
            for p in &self.kb.ontology.object_properties {
                let s = property_name_score(&t.lemma, p.name, p.label);
                if best.as_ref().is_none_or(|(bs, _)| s > *bs) {
                    best = Some((s, p.name.to_string()));
                }
            }
            for p in &self.kb.ontology.data_properties {
                let s = property_name_score(&t.lemma, p.name, p.label);
                if best.as_ref().is_none_or(|(bs, _)| s > *bs) {
                    best = Some((s, p.name.to_string()));
                }
            }
        }
        let (score, property) = best?;
        if score < 0.5 {
            return None;
        }
        let prop = dbont::iri(&property);
        let forward = format!("SELECT DISTINCT ?x WHERE {{ <{}> <{prop}> ?x . }}", entity.as_str());
        let terms = run(self.kb, &forward);
        if !terms.is_empty() {
            return Some(BaselineAnswer { terms, sparql: forward });
        }
        let backward =
            format!("SELECT DISTINCT ?x WHERE {{ ?x <{prop}> <{}> . }}", entity.as_str());
        let terms = run(self.kb, &backward);
        if terms.is_empty() {
            None
        } else {
            Some(BaselineAnswer { terms, sparql: backward })
        }
    }
}

/// Template baseline: a fixed list of (pattern, query-shape) pairs in the
/// spirit of template-based QA (Unger et al. 2012). Matches on POS shape and
/// keywords; anything outside the templates is unanswered.
pub struct TemplateBaseline<'kb> {
    kb: &'kb KnowledgeBase,
}

impl<'kb> TemplateBaseline<'kb> {
    pub fn new(kb: &'kb KnowledgeBase) -> Self {
        TemplateBaseline { kb }
    }

    pub fn answer(&self, question: &str) -> Option<BaselineAnswer> {
        let tokens = tag_sentence(question);
        let words: Vec<String> = tokens.iter().map(|t| t.text.clone()).collect();
        let lower: Vec<String> = tokens.iter().map(|t| t.lower()).collect();
        let joined = lower.join(" ");

        // Template 1: "what is the <prop> of <entity>"
        if let Some(rest) = template_prefix(&joined, &["what is the ", "who is the "]) {
            if let Some(of_pos) = rest.find(" of ") {
                let prop_text = &rest[..of_pos];
                let (entity, _, _) = find_entity(self.kb, &words)?;
                let property = self.best_property(prop_text)?;
                let prop = dbont::iri(&property);
                let q = format!(
                    "SELECT DISTINCT ?x WHERE {{ <{}> <{prop}> ?x . }}",
                    entity.as_str()
                );
                let terms = run(self.kb, &q);
                if !terms.is_empty() {
                    return Some(BaselineAnswer { terms, sparql: q });
                }
                return None;
            }
        }

        // Template 2: "which <class> is/was <verb-participle> by <entity>"
        if joined.starts_with("which ") && joined.contains(" by ") {
            let class_word = lower.get(1)?.clone();
            let class = self.kb.class_with_label(&relpat_nlp::lemmatize(&class_word, PosTag::Nns))?;
            let participle = tokens.iter().find(|t| t.pos == PosTag::Vbn)?;
            let property = self.best_property(&participle.lemma)?;
            let (entity, _, _) = find_entity(self.kb, &words)?;
            let q = format!(
                "SELECT DISTINCT ?x WHERE {{ ?x <{}> <{}> . ?x <{}> <{}> . }}",
                relpat_rdf::vocab::rdf::TYPE,
                dbont::iri(class),
                dbont::iri(&property),
                entity.as_str()
            );
            let terms = run(self.kb, &q);
            if !terms.is_empty() {
                return Some(BaselineAnswer { terms, sparql: q });
            }
            return None;
        }

        // Template 3: "where was <entity> born" / "where did <entity> die"
        for (marker, property) in
            [("born", "birthPlace"), ("die", "deathPlace"), ("died", "deathPlace")]
        {
            if joined.starts_with("where") && lower.iter().any(|w| w == marker) {
                let (entity, _, _) = find_entity(self.kb, &words)?;
                let q = format!(
                    "SELECT DISTINCT ?x WHERE {{ <{}> <{}> ?x . }}",
                    entity.as_str(),
                    dbont::iri(property)
                );
                let terms = run(self.kb, &q);
                if !terms.is_empty() {
                    return Some(BaselineAnswer { terms, sparql: q });
                }
                return None;
            }
        }
        None
    }

    fn best_property(&self, text: &str) -> Option<String> {
        let mut best: Option<(f64, String)> = None;
        for p in &self.kb.ontology.object_properties {
            let s = property_name_score(text, p.name, p.label);
            if best.as_ref().is_none_or(|(bs, _)| s > *bs) {
                best = Some((s, p.name.to_string()));
            }
        }
        for p in &self.kb.ontology.data_properties {
            let s = property_name_score(text, p.name, p.label);
            if best.as_ref().is_none_or(|(bs, _)| s > *bs) {
                best = Some((s, p.name.to_string()));
            }
        }
        best.filter(|(s, _)| *s >= 0.6).map(|(_, p)| p)
    }
}

fn template_prefix<'a>(joined: &'a str, prefixes: &[&str]) -> Option<&'a str> {
    prefixes.iter().find_map(|p| joined.strip_prefix(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relpat_kb::{generate, KbConfig};
    use std::sync::OnceLock;

    fn kb() -> &'static KnowledgeBase {
        static KB: OnceLock<KnowledgeBase> = OnceLock::new();
        KB.get_or_init(|| generate(&KbConfig::tiny()))
    }

    #[test]
    fn keyword_baseline_answers_simple_questions() {
        let b = KeywordBaseline::new(kb());
        let a = b.answer("What is the capital of Turkey?").unwrap();
        assert!(a.terms[0].as_iri().unwrap().as_str().ends_with("Ankara"));
    }

    #[test]
    fn keyword_baseline_ignores_structure() {
        // No parse: "written" string-matches dbont:writer (the song
        // property), whose facts do not cover books — the baseline either
        // misses or answers through luck; it must never panic and whatever
        // it returns must be non-empty.
        let b = KeywordBaseline::new(kb());
        if let Some(a) = b.answer("Which book is written by Orhan Pamuk?") {
            assert!(!a.terms.is_empty());
        }
    }

    #[test]
    fn keyword_baseline_fails_without_entity() {
        let b = KeywordBaseline::new(kb());
        assert!(b.answer("What is the meaning of everything?").is_none());
    }

    #[test]
    fn template_baseline_matches_what_is_the() {
        let b = TemplateBaseline::new(kb());
        let a = b.answer("What is the capital of Turkey?").unwrap();
        assert!(a.terms[0].as_iri().unwrap().as_str().ends_with("Ankara"));
    }

    #[test]
    fn template_baseline_matches_which_passive() {
        let b = TemplateBaseline::new(kb());
        let a = b.answer("Which book is written by Orhan Pamuk?");
        // "written" → writer (song domain) may fail; author via name score —
        // best_property picks the max scorer, which is writer; the query then
        // returns nothing and the template gives up. Either outcome is
        // acceptable for a baseline; it must not panic.
        if let Some(a) = a {
            assert!(!a.terms.is_empty());
        }
    }

    #[test]
    fn template_baseline_where_born() {
        let b = TemplateBaseline::new(kb());
        let a = b.answer("Where was Michael Jackson born?").unwrap();
        assert!(a.terms[0].as_iri().unwrap().as_str().ends_with("Gary"));
    }

    #[test]
    fn template_baseline_rejects_off_template() {
        let b = TemplateBaseline::new(kb());
        assert!(b.answer("Give me all films directed by James Cameron.").is_none());
    }
}
