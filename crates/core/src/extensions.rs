//! Extensions beyond the published system — the future work the paper's
//! Discussion (§5) and Conclusion (§6) call for, implemented behind opt-in
//! flags so the default configuration stays a faithful reproduction:
//!
//! - **existence questions** — "Is Frank Herbert still alive?" The paper
//!   shows the triple `[Frank Herbert][is][alive]` and notes that "new
//!   methods should be implemented to overcome this kind of issues"; here
//!   the adjective is compiled to a `deathDate` existence check.
//! - **superlatives** — "What is the highest mountain?" compiled to an
//!   `ORDER BY DESC(...) LIMIT 1` query via the adjective→attribute map.
//! - **count questions** — "How many books did Orhan Pamuk write?" compiled
//!   to a SPARQL `COUNT`, and "How many employees does X have?" resolved to
//!   a numeric data property. Together with data-property relational
//!   patterns (the §5 "research gap"), this also covers "How many people
//!   live in X?".

use relpat_nlp::{DepGraph, DepRel, PosTag};
use relpat_rdf::vocab::{dbont, rdf};
use relpat_rdf::Literal;
use relpat_wordnet::WnPos;

use crate::answer::{Answer, AnswerValue};
use crate::mapping::Mapper;
use crate::pipeline::{Response, Stage};
use crate::similarity::property_name_score;
use crate::triples::{PatternTriple, PredicateSlot, QuestionKind, SlotTerm};

/// Which extensions are active. All off by default: the paper's system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtensionConfig {
    pub existence_questions: bool,
    pub superlatives: bool,
    pub count_questions: bool,
}

impl ExtensionConfig {
    /// Everything on — the "extended system" evaluated in EXPERIMENTS.md.
    pub fn all() -> Self {
        ExtensionConfig {
            existence_questions: true,
            superlatives: true,
            count_questions: true,
        }
    }

    pub fn any(&self) -> bool {
        self.existence_questions || self.superlatives || self.count_questions
    }
}

/// Attempts the extension handlers on a question the standard pipeline gave
/// up on. Returns a full response on success.
pub fn try_answer(
    mapper: &Mapper<'_>,
    config: ExtensionConfig,
    question: &str,
    graph: &DepGraph,
    prior: &Response,
) -> Option<Response> {
    if config.existence_questions {
        if let Some(r) = existence_question(mapper, question, prior) {
            return Some(r);
        }
    }
    if config.superlatives {
        if let Some(r) = superlative_question(mapper, question, graph) {
            return Some(r);
        }
    }
    if config.count_questions {
        if let Some(r) = count_question(mapper, question, graph, prior) {
            return Some(r);
        }
    }
    None
}

fn answered(
    mapper: &Mapper<'_>,
    question: &str,
    prior: &Response,
    sparql: String,
    value: AnswerValue,
) -> Response {
    let answer = Answer { value, sparql, score: 1.0 };
    // Rebuild the trace for the upgraded stage/answer; timings, lookup
    // deltas and execution stats from the standard attempt carry over.
    let mut trace = crate::pipeline::trace_for(
        mapper.kb,
        question,
        Stage::Answered,
        prior.analysis.as_ref(),
        prior.mapped.as_ref(),
        &prior.queries,
        Some(&answer),
    );
    trace.queries_executed = prior.trace.queries_executed;
    trace.queries_survived = prior.trace.queries_survived;
    trace.queries_failed = prior.trace.queries_failed;
    trace.pattern_lookups = prior.trace.pattern_lookups;
    trace.stages = prior.trace.stages.clone();
    Response {
        question: question.to_string(),
        stage: Stage::Answered,
        analysis: prior.analysis.clone(),
        mapped: prior.mapped.clone(),
        queries: prior.queries.clone(),
        answer: Some(answer),
        trace,
    }
}

/// "Is Frank Herbert still alive?" — polar copular adjective over life
/// state, compiled to a `deathDate` existence check.
fn existence_question(
    mapper: &Mapper<'_>,
    question: &str,
    prior: &Response,
) -> Option<Response> {
    let analysis = prior.analysis.as_ref()?;
    if analysis.kind != QuestionKind::Polar {
        return None;
    }
    let triple = analysis.triples.first()?;
    let (alive, entity_text) = match triple {
        PatternTriple {
            subject: SlotTerm::Mention { text },
            predicate: PredicateSlot::Word { lemma, .. },
            object: SlotTerm::Mention { text: adj },
        } if lemma == "be" => match adj.to_lowercase().as_str() {
            "alive" | "living" => (true, text),
            "dead" | "deceased" => (false, text),
            _ => return None,
        },
        _ => return None,
    };
    let entity = mapper.resolve_entity(entity_text, &[])?;
    let sparql = format!(
        "ASK {{ <{}> <{}> ?d }}",
        entity.iri.as_str(),
        dbont::iri("deathDate")
    );
    let has_death_date = match mapper.kb.query(&sparql) {
        Ok(relpat_sparql::QueryResult::Boolean(b)) => b,
        _ => return None,
    };
    let verdict = if alive { !has_death_date } else { has_death_date };
    Some(answered(mapper, question, prior, sparql, AnswerValue::Boolean(verdict)))
}

/// Adjectives whose superlative asks for the *smallest* value.
fn ascending_superlative(adj: &str) -> bool {
    matches!(adj, "small" | "low" | "short" | "young" | "shallow" | "little")
}

/// "What is the highest mountain?" — wh-copular with a superlative
/// adjective over a class noun, compiled to `ORDER BY` + `LIMIT 1`.
fn superlative_question(
    mapper: &Mapper<'_>,
    question: &str,
    graph: &DepGraph,
) -> Option<Response> {
    let root = graph.root?;
    let root_tok = graph.token(root);
    if !root_tok.pos.is_noun() {
        return None;
    }
    graph.child_with(root, &DepRel::Cop)?;
    let subj = graph.child_with(root, &DepRel::Nsubj)?;
    if !graph.token(subj).pos.is_wh() {
        return None;
    }
    let amod = graph.child_where(root, |r| r == &DepRel::Amod)?;
    let adj_tok = graph.token(amod);
    if adj_tok.pos != PosTag::Jjs {
        return None;
    }

    let class = mapper.resolve_class(&root_tok.lemma)?;
    let attr = mapper.wordnet.attribute_noun(&adj_tok.lemma)?;
    let property = data_property_for_attr(mapper, attr, class)?;

    let direction = if ascending_superlative(&adj_tok.lemma) { "ASC" } else { "DESC" };
    let sparql = format!(
        "SELECT ?x WHERE {{ ?x <{}> <{}> . ?x <{}> ?v }} ORDER BY {direction}(?v) LIMIT 1",
        rdf::TYPE,
        dbont::iri(class),
        dbont::iri(&property)
    );
    let terms = run_select(mapper, &sparql)?;
    let empty = Response {
        question: question.to_string(),
        stage: Stage::ExtractionFailed,
        analysis: None,
        mapped: None,
        queries: Vec::new(),
        answer: None,
        trace: relpat_obs::QuestionTrace::new(question),
    };
    Some(answered(mapper, question, &empty, sparql, AnswerValue::Terms(terms)))
}

/// The data property carrying attribute `attr` for instances of `class`:
/// exact/near name match first, then a WordNet hypernym-path match
/// (`height` → `elevation` for mountains). Domain must cover the class.
fn data_property_for_attr(mapper: &Mapper<'_>, attr: &str, class: &str) -> Option<String> {
    let mut best: Option<(f64, String)> = None;
    for p in &mapper.kb.ontology.data_properties {
        let domain_ok = mapper.kb.ontology.is_subclass_of(class, p.domain)
            || mapper.kb.ontology.is_subclass_of(p.domain, class);
        if !domain_ok {
            continue;
        }
        let mut score = property_name_score(attr, p.name, p.label);
        if score < 0.9 {
            let head = p.label.split_whitespace().last().unwrap_or(p.label);
            if let (Some(lin), Some(wup)) = (
                mapper.wordnet.lin(attr, head, WnPos::Noun),
                mapper.wordnet.wup(attr, head, WnPos::Noun),
            ) {
                if lin >= 0.75 && wup >= 0.85 {
                    score = score.max(lin * 0.95);
                }
            }
        }
        if score >= 0.7 && best.as_ref().is_none_or(|(s, _)| score > *s) {
            best = Some((score, p.name.to_string()));
        }
    }
    best.map(|(_, p)| p)
}

/// Count questions: "How many books did X write?" (class counting via
/// SPARQL COUNT) and "How many employees does X have?" / "How many people
/// live in X?" (numeric data property).
fn count_question(
    mapper: &Mapper<'_>,
    question: &str,
    graph: &DepGraph,
    prior: &Response,
) -> Option<Response> {
    // Identify the "how many N" noun.
    let tokens = &graph.tokens;
    let how = tokens.iter().position(|t| t.lemma == "how")?;
    if tokens.get(how + 1).map(|t| t.lemma.as_str()) != Some("many") {
        return None;
    }
    let counted = tokens.get(how + 2).filter(|t| t.pos.is_noun())?;

    let root = graph.root?;
    let root_tok = graph.token(root);
    if !root_tok.pos.is_verb() {
        return None;
    }

    // Reading 1 — class counting: "How many books did X write?"
    if let Some(r) = count_by_class(mapper, question, graph, prior, root, &counted.lemma) {
        return Some(r);
    }

    // Reading 2 — numeric data property: the counted noun or the verb names
    // it ("employees" → numberOfEmployees; "people live" → populationTotal
    // via mined data patterns).
    let entity_idx = graph
        .child_with(root, &DepRel::Nsubj)
        .into_iter()
        .chain(graph.edges.iter().filter_map(|e| {
            (e.head == root && matches!(e.rel, DepRel::Prep(_) | DepRel::Dobj))
                .then_some(e.dependent)
        }))
        .find(|&i| graph.token(i).pos.is_proper_noun())?;
    let entity = mapper.resolve_entity(&graph.phrase_text(entity_idx), &[])?;

    let mut candidates: Vec<(f64, String)> = Vec::new();
    for p in &mapper.kb.ontology.data_properties {
        let s = property_name_score(&counted.lemma, p.name, p.label);
        if s >= 0.75 {
            candidates.push((s * 10.0, p.name.to_string()));
        }
    }
    for word in [counted.lemma.as_str(), root_tok.lemma.as_str()] {
        for c in mapper.patterns.candidates_for_word(word) {
            if c.is_data {
                candidates.push((c.freq as f64, c.property.clone()));
            }
        }
    }
    candidates.sort_by(|(a, _), (b, _)| b.total_cmp(a));
    // Try candidates in ranked order: the first one that actually holds a
    // numeric value for this entity wins (the KB arbitrates ties).
    for (_, property) in candidates {
        let sparql = format!(
            "SELECT ?x WHERE {{ <{}> <{}> ?x }}",
            entity.iri.as_str(),
            dbont::iri(&property)
        );
        let Some(terms) = run_select(mapper, &sparql) else { continue };
        let numeric =
            terms.iter().all(|t| t.as_literal().is_some_and(|l| l.is_numeric()));
        if numeric {
            return Some(answered(mapper, question, prior, sparql, AnswerValue::Terms(terms)));
        }
    }
    None
}

/// Reading 1 of count questions: count instances of a class related to an
/// entity through the verb's property ("How many books did X write?").
fn count_by_class(
    mapper: &Mapper<'_>,
    question: &str,
    graph: &DepGraph,
    prior: &Response,
    root: usize,
    counted_lemma: &str,
) -> Option<Response> {
    let class = mapper.resolve_class(counted_lemma)?;
    let root_tok = graph.token(root);
    let subj = graph.child_with(root, &DepRel::Nsubj)?;
    let entity = mapper.resolve_entity(&graph.phrase_text(subj), &[])?;
    // Property candidates for the verb, reusing the §2.2 machinery.
    let candidates = mapper.property_candidates(
        &root_tok.text,
        &root_tok.lemma,
        crate::triples::PredKind::Verb,
    );
    for c in candidates.iter().filter(|c| !c.is_data) {
        for inverse in [c.preferred_inverse.unwrap_or(false), true] {
            let (s, o) = if inverse {
                ("?x".to_string(), format!("<{}>", entity.iri.as_str()))
            } else {
                (format!("<{}>", entity.iri.as_str()), "?x".to_string())
            };
            let sparql = format!(
                "SELECT (COUNT(DISTINCT ?x) AS ?c) WHERE {{ ?x <{}> <{}> . {s} <{}> {o} }}",
                rdf::TYPE,
                dbont::iri(class),
                dbont::iri(&c.property)
            );
            if let Some(terms) = run_select(mapper, &sparql) {
                let positive = terms
                    .first()
                    .and_then(|t| t.as_literal())
                    .and_then(Literal::as_i64)
                    .is_some_and(|n| n > 0);
                if positive {
                    return Some(answered(mapper, question, prior, sparql, AnswerValue::Terms(terms)));
                }
            }
        }
    }
    None
}

fn run_select(mapper: &Mapper<'_>, sparql: &str) -> Option<Vec<relpat_rdf::Term>> {
    match mapper.kb.query(sparql) {
        Ok(relpat_sparql::QueryResult::Solutions(sols)) => {
            let mut out = Vec::new();
            for row in &sols.rows {
                for cell in row.iter().flatten() {
                    if !out.contains(cell) {
                        out.push(cell.clone());
                    }
                }
            }
            if out.is_empty() {
                None
            } else {
                Some(out)
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, PipelineConfig};
    use relpat_kb::{generate, KbConfig, KnowledgeBase};
    use std::sync::OnceLock;

    fn kb() -> &'static KnowledgeBase {
        static KB: OnceLock<KnowledgeBase> = OnceLock::new();
        KB.get_or_init(|| generate(&KbConfig::tiny()))
    }

    fn extended() -> &'static Pipeline<'static> {
        static P: OnceLock<Pipeline<'static>> = OnceLock::new();
        P.get_or_init(|| Pipeline::extended(kb()))
    }

    fn strict() -> Pipeline<'static> {
        Pipeline::with_config(kb(), PipelineConfig::standard())
    }

    #[test]
    fn config_defaults_off_all_on() {
        assert!(!ExtensionConfig::default().any());
        assert!(ExtensionConfig::all().any());
    }

    #[test]
    fn alive_question_answered_by_extension_only() {
        let q = "Is Frank Herbert still alive?";
        // Paper configuration: fails in mapping.
        assert_eq!(strict().answer(q).stage, Stage::MappingFailed);
        // Extended: Herbert died in 1986 → "no".
        let r = extended().answer(q);
        assert_eq!(r.stage, Stage::Answered);
        assert_eq!(r.answer.unwrap().value, AnswerValue::Boolean(false));
    }

    #[test]
    fn alive_question_true_for_living_person() {
        // Michelle Obama has no deathDate.
        let r = extended().answer("Is Michelle Obama still alive?");
        assert_eq!(r.answer.unwrap().value, AnswerValue::Boolean(true));
    }

    #[test]
    fn dead_question_inverts() {
        let r = extended().answer("Is Frank Herbert dead?");
        assert_eq!(r.answer.unwrap().value, AnswerValue::Boolean(true));
    }

    #[test]
    fn superlative_mountain_uses_elevation() {
        let r = extended().answer("What is the highest mountain?");
        assert_eq!(r.stage, Stage::Answered, "{:?}", r.stage);
        let ans = r.answer.unwrap();
        assert!(ans.sparql.contains("elevation"), "{}", ans.sparql);
        assert!(ans.sparql.contains("DESC"));
        // Verify it really is the maximum.
        let golds = kb()
            .query("SELECT ?m { ?m rdf:type dbont:Mountain . ?m dbont:elevation ?e } ORDER BY DESC(?e) LIMIT 1")
            .unwrap()
            .into_solutions().unwrap();
        if let AnswerValue::Terms(ts) = &ans.value {
            assert_eq!(ts[0].as_iri(), golds.first().unwrap().as_iri());
        }
    }

    #[test]
    fn superlative_river_and_lake() {
        let river = extended().answer("What is the longest river?");
        assert_eq!(river.stage, Stage::Answered);
        assert!(river.answer.unwrap().sparql.contains("length"));
        let lake = extended().answer("What is the deepest lake?");
        assert_eq!(lake.stage, Stage::Answered);
        assert!(lake.answer.unwrap().sparql.contains("depth"));
    }

    #[test]
    fn count_books_by_author() {
        let r = extended().answer("How many books did Orhan Pamuk write?");
        assert_eq!(r.stage, Stage::Answered, "{:?}", r.stage);
        let ans = r.answer.unwrap();
        assert!(ans.sparql.contains("COUNT"));
        if let AnswerValue::Terms(ts) = &ans.value {
            assert_eq!(ts[0].as_literal().unwrap().as_i64(), Some(3));
        }
    }

    #[test]
    fn count_employees_is_data_property() {
        let r = extended().answer("How many employees does Vertex Systems have?");
        assert_eq!(r.stage, Stage::Answered, "{:?}", r.stage);
        let ans = r.answer.unwrap();
        assert!(ans.sparql.contains("numberOfEmployees"), "{}", ans.sparql);
    }

    #[test]
    fn how_many_people_live_in_turkey_via_data_patterns() {
        let r = extended().answer("How many people live in Turkey?");
        assert_eq!(r.stage, Stage::Answered, "{:?}", r.stage);
        let ans = r.answer.unwrap();
        assert!(ans.sparql.contains("populationTotal"), "{}", ans.sparql);
        if let AnswerValue::Terms(ts) = &ans.value {
            assert_eq!(ts[0].as_literal().unwrap().as_i64(), Some(74_724_269));
        }
    }

    #[test]
    fn superlative_with_unknown_class_declines() {
        let r = extended().answer("What is the highest spaceship?");
        assert_ne!(r.stage, Stage::Answered);
    }

    #[test]
    fn superlative_without_matching_attribute_declines() {
        // "oldest museum": museums have no age-like data property in the
        // ontology, so the handler must decline rather than guess.
        let r = extended().answer("What is the oldest museum?");
        assert_ne!(r.stage, Stage::Answered);
    }

    #[test]
    fn count_with_unknown_entity_declines() {
        let r = extended().answer("How many books did Zorblax write?");
        assert_ne!(r.stage, Stage::Answered);
    }

    #[test]
    fn existence_requires_life_state_adjective() {
        // Polar adjective outside the alive/dead vocabulary is not an
        // existence question.
        let r = extended().answer("Is Frank Herbert famous?");
        assert_ne!(r.stage, Stage::Answered);
    }

    #[test]
    fn ascending_superlatives_flip_direction() {
        let r = extended().answer("What is the youngest scientist?");
        // "young" → age; no Person-age data property is declared, so this
        // either declines or (if it ever matches) must use ASC ordering.
        if let Some(ans) = &r.answer {
            assert!(ans.sparql.contains("ASC"), "{}", ans.sparql);
        }
    }

    #[test]
    fn extensions_do_not_fire_for_answered_questions() {
        // A standard question must still go through the normal path.
        let r = extended().answer("Which book is written by Orhan Pamuk?");
        assert_eq!(r.stage, Stage::Answered);
        assert!(r.answer.unwrap().sparql.contains("author"));
    }

    #[test]
    fn extensions_leave_hopeless_questions_unanswered() {
        let r = extended().answer("Which films starring James Cameron were released after 2000?");
        assert_ne!(r.stage, Stage::Answered);
    }
}
