//! Answer extraction: execute candidate queries, type-check, rank (§2.3).
//!
//! Queries arrive sorted by ranking score, and the highest-scored candidate
//! whose type-checked result set is non-empty (for `ASK`: the first `true`)
//! supplies the answer. The paper executes the full cartesian product; this
//! implementation exploits the ranking instead and **terminates early** at
//! the first survivor — the sequential path stops outright, the parallel
//! path runs rank-ordered chunks under a shared cancellation flag so chunks
//! ranked after a surviving one are never sent. `AnswerConfig::exhaustive`
//! restores the paper's execute-everything behaviour for ablations and
//! funnel measurements; the selected answer is identical either way, only
//! the execution cost (and [`ExecStats`]) changes.

use std::sync::atomic::{AtomicUsize, Ordering};

use relpat_kb::KnowledgeBase;
use relpat_obs::fx::FxHashSet;
use relpat_obs::QueryPlan;
use relpat_rdf::Term;

use crate::queries::BuiltQuery;
use crate::triples::ExpectedType;

/// A produced answer.
#[derive(Debug, Clone, PartialEq)]
pub enum AnswerValue {
    /// Result set of the winning `SELECT` query.
    Terms(Vec<Term>),
    /// Verdict of a polar (`ASK`) question.
    Boolean(bool),
}

/// The chosen answer with its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    pub value: AnswerValue,
    /// The SPARQL query that produced it.
    pub sparql: String,
    /// Its ranking score (§2.3.1: product of predicate frequencies).
    pub score: f64,
}

/// Table 1 of the paper: does a term satisfy the expected answer type?
pub fn type_check(kb: &KnowledgeBase, term: &Term, expected: ExpectedType) -> bool {
    match expected {
        ExpectedType::Unconstrained | ExpectedType::Boolean => true,
        ExpectedType::PersonOrOrganization => match term {
            Term::Iri(iri) => {
                kb.is_instance_of(iri, "Person")
                    || kb.is_instance_of(iri, "Organisation")
                    || kb.is_instance_of(iri, "Company")
            }
            _ => false,
        },
        ExpectedType::Place => match term {
            Term::Iri(iri) => kb.is_instance_of(iri, "Place"),
            _ => false,
        },
        ExpectedType::Date => term.as_literal().is_some_and(|l| l.is_date()),
        ExpectedType::Numeric => term.as_literal().is_some_and(|l| l.is_numeric()),
    }
}

/// Configuration for answer extraction.
#[derive(Debug, Clone)]
pub struct AnswerConfig {
    /// Apply Table-1 expected-type filtering (ablation A3 switches it off).
    pub use_type_check: bool,
    /// Evaluate candidate queries on a thread pool.
    pub parallel: bool,
    /// Execute every candidate even after the winner is known (the paper's
    /// literal §2.3 behaviour). Off by default: ranked early termination.
    pub exhaustive: bool,
}

impl Default for AnswerConfig {
    fn default() -> Self {
        AnswerConfig { use_type_check: true, parallel: false, exhaustive: false }
    }
}

/// Execution statistics for one batch of candidate queries (feeds the
/// per-question [`relpat_obs::QuestionTrace`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Queries actually sent to the SPARQL engine (under early termination
    /// this is less than the batch size whenever a survivor is found).
    pub executed: u64,
    /// Queries whose results survived execution + type checking (for `ASK`:
    /// candidates that evaluated to `true`).
    pub survived: u64,
    /// Queries that failed to parse or evaluate.
    pub failed: u64,
}

/// Runs the candidate queries and picks the answer.
///
/// `SELECT`: the highest-scored query whose type-checked result set is
/// non-empty supplies the answer set. `ASK`: the highest-scored query that
/// holds answers `true`; if every candidate is false the answer is `false`
/// (the system did find consistent readings, none of which hold).
pub fn extract_answer(
    kb: &KnowledgeBase,
    expected: ExpectedType,
    ask: bool,
    queries: &[BuiltQuery],
    config: &AnswerConfig,
) -> Option<Answer> {
    extract_answer_traced(kb, expected, ask, queries, config).0
}

/// [`extract_answer`] plus the execution statistics the trace records.
pub fn extract_answer_traced(
    kb: &KnowledgeBase,
    expected: ExpectedType,
    ask: bool,
    queries: &[BuiltQuery],
    config: &AnswerConfig,
) -> (Option<Answer>, ExecStats) {
    extract_answer_inner(kb, expected, ask, queries, config, None)
}

/// [`extract_answer_traced`] plus EXPLAIN ANALYZE plan traces: every
/// executed candidate appends a [`QueryPlan`] to `plans`, in execution
/// order (candidates that fail to parse produce no plan — there is nothing
/// to trace). Explained extraction always runs the sequential ranked sweep
/// (even when `config.parallel` is set) so the plan order is deterministic
/// and each query's per-step scan counts line up with the global
/// `sparql.rows_scanned` counter deltas.
pub fn extract_answer_explained(
    kb: &KnowledgeBase,
    expected: ExpectedType,
    ask: bool,
    queries: &[BuiltQuery],
    config: &AnswerConfig,
    plans: &mut Vec<QueryPlan>,
) -> (Option<Answer>, ExecStats) {
    extract_answer_inner(kb, expected, ask, queries, config, Some(plans))
}

fn extract_answer_inner(
    kb: &KnowledgeBase,
    expected: ExpectedType,
    ask: bool,
    queries: &[BuiltQuery],
    config: &AnswerConfig,
    plans: Option<&mut Vec<QueryPlan>>,
) -> (Option<Answer>, ExecStats) {
    if queries.is_empty() {
        return (None, ExecStats::default());
    }
    let evals = run_all(kb, expected, ask, queries, config, plans);

    let mut stats = ExecStats::default();
    let mut answer: Option<Answer> = None;
    let mut first_false: Option<&BuiltQuery> = None;
    for (query, eval) in queries.iter().zip(evals.iter()) {
        // `None` marks a candidate skipped by early termination: never sent.
        let Some(eval) = eval else { continue };
        stats.executed += 1;
        match eval {
            Eval::Survivor(value) => {
                stats.survived += 1;
                if answer.is_none() {
                    answer = Some(Answer {
                        value: value.clone(),
                        sparql: query.sparql.clone(),
                        score: query.score,
                    });
                }
            }
            Eval::False => {
                if first_false.is_none() {
                    first_false = Some(query);
                }
            }
            Eval::Failed => stats.failed += 1,
            Eval::Empty => {}
        }
    }
    if !config.exhaustive && (stats.executed as usize) < queries.len() {
        // The ranked sweep stopped before exhausting the candidate list —
        // the decision that makes §2.3 sublinear in candidate count.
        relpat_obs::jevent!(
            relpat_obs::Level::Debug, "qa.answer.early_term",
            "executed" => stats.executed,
            "skipped" => queries.len() as u64 - stats.executed,
        );
    }
    if ask {
        // All executed readings evaluated to false. (When a survivor exists
        // the sweep may have stopped early, but a skipped candidate always
        // ranks below the winner, so the fallback is only reachable after a
        // full sweep.)
        answer = answer.or_else(|| {
            first_false.map(|query| Answer {
                value: AnswerValue::Boolean(false),
                sparql: query.sparql.clone(),
                score: query.score,
            })
        });
    }
    (answer, stats)
}

/// Classified outcome of one executed candidate query.
#[derive(Debug, Clone, PartialEq)]
enum Eval {
    /// Non-empty type-checked `SELECT` result / `ASK` `true` — this
    /// candidate can supply the answer.
    Survivor(AnswerValue),
    /// Executed, but nothing survived filtering (or the result form did not
    /// match the question form).
    Empty,
    /// `ASK` executed and evaluated to `false`.
    False,
    /// Parse or evaluation failure.
    Failed,
}

/// Executes one query and classifies its outcome. `SELECT` result terms are
/// type-filtered and deduplicated (first-seen order) in a single pass.
fn evaluate_one(
    kb: &KnowledgeBase,
    query: &BuiltQuery,
    expected: ExpectedType,
    ask: bool,
    config: &AnswerConfig,
    plans: Option<&mut Vec<QueryPlan>>,
) -> Eval {
    let result = match plans {
        Some(plans) => kb.query_traced(&query.sparql).map(|(result, trace)| {
            plans.push(QueryPlan { sparql: query.sparql.clone(), trace });
            result
        }),
        None => kb.query(&query.sparql),
    };
    match result {
        Ok(relpat_sparql::QueryResult::Solutions(sols)) => {
            if ask {
                // SELECT result for a polar question: a kind mismatch is a
                // malformed candidate, not a no-answer — count it under
                // `ExecStats.failed` like any other execution error.
                return Eval::Failed;
            }
            let mut seen: FxHashSet<Term> = FxHashSet::default();
            let mut terms: Vec<Term> = Vec::new();
            for row in &sols.rows {
                for cell in row.iter().flatten() {
                    if (!config.use_type_check || type_check(kb, cell, expected))
                        && seen.insert(cell.clone())
                    {
                        terms.push(cell.clone());
                    }
                }
            }
            if terms.is_empty() {
                Eval::Empty
            } else {
                Eval::Survivor(AnswerValue::Terms(terms))
            }
        }
        Ok(relpat_sparql::QueryResult::Boolean(b)) => {
            if !ask {
                Eval::Failed // ASK result for a non-polar question
            } else if b {
                Eval::Survivor(AnswerValue::Boolean(true))
            } else {
                Eval::False
            }
        }
        Err(_) => Eval::Failed,
    }
}

/// Evaluates the ranked candidates. The result vector is index-aligned with
/// `queries`; `None` marks candidates skipped by early termination. Both
/// paths guarantee: the lowest-indexed survivor over the *whole* batch is
/// always among the executed outcomes, so the selected answer is identical
/// to an exhaustive sweep.
fn run_all(
    kb: &KnowledgeBase,
    expected: ExpectedType,
    ask: bool,
    queries: &[BuiltQuery],
    config: &AnswerConfig,
    mut plans: Option<&mut Vec<QueryPlan>>,
) -> Vec<Option<Eval>> {
    let mut out: Vec<Option<Eval>> = vec![None; queries.len()];
    // Plan collection pins the sweep to the sequential path: parallel
    // workers would interleave plan pushes non-deterministically.
    if plans.is_some() || !config.parallel || queries.len() < 4 {
        for (slot, query) in out.iter_mut().zip(queries.iter()) {
            let eval = evaluate_one(kb, query, expected, ask, config, plans.as_deref_mut());
            let found = matches!(eval, Eval::Survivor(_));
            *slot = Some(eval);
            if found && !config.exhaustive {
                break; // every remaining candidate ranks below the winner
            }
        }
        return out;
    }

    let workers = std::thread::available_parallelism().map(usize::from).unwrap_or(4).min(8);
    // Several small rank-contiguous chunks per worker: the top-ranked
    // candidates land in the first chunks, so cancellation kicks in after
    // roughly one wave instead of after a full per-worker share.
    let chunk = queries.len().div_ceil(workers * 4).max(1);
    let n_chunks = queries.len().div_ceil(chunk);
    // Cancellation flag: the lowest chunk index that produced a survivor
    // (usize::MAX = none yet). Chunks are claimed in ascending rank order,
    // and a chunk may only be skipped when a *lower-ranked* chunk already
    // survived — so the best survivor is never lost to a race.
    let found_chunk = AtomicUsize::new(usize::MAX);
    let next_chunk = AtomicUsize::new(0);
    let mut collected: Vec<(usize, Vec<Eval>)> = Vec::with_capacity(n_chunks);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(n_chunks))
            .map(|_| {
                let found_chunk = &found_chunk;
                let next_chunk = &next_chunk;
                scope.spawn(move || {
                    let mut mine: Vec<(usize, Vec<Eval>)> = Vec::new();
                    loop {
                        let c = next_chunk.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        if !config.exhaustive && found_chunk.load(Ordering::Acquire) < c {
                            continue; // a higher-ranked chunk already survived
                        }
                        let start = c * chunk;
                        let slice = &queries[start..(start + chunk).min(queries.len())];
                        let evals: Vec<Eval> = slice
                            .iter()
                            .map(|q| evaluate_one(kb, q, expected, ask, config, None))
                            .collect();
                        if evals.iter().any(|e| matches!(e, Eval::Survivor(_))) {
                            found_chunk.fetch_min(c, Ordering::Release);
                        }
                        mine.push((start, evals));
                    }
                    mine
                })
            })
            .collect();
        for h in handles {
            collected.extend(h.join().expect("query worker panicked"));
        }
    });
    for (start, evals) in collected {
        for (i, eval) in evals.into_iter().enumerate() {
            out[start + i] = Some(eval);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relpat_kb::{generate, KbConfig, KnowledgeBase};
    use relpat_rdf::{Iri, Literal};
    use std::sync::OnceLock;

    fn kb() -> &'static KnowledgeBase {
        static KB: OnceLock<KnowledgeBase> = OnceLock::new();
        KB.get_or_init(|| generate(&KbConfig::tiny()))
    }

    fn bq(sparql: &str, score: f64) -> BuiltQuery {
        BuiltQuery { sparql: sparql.to_string(), score }
    }

    fn exhaustive() -> AnswerConfig {
        AnswerConfig { exhaustive: true, ..AnswerConfig::default() }
    }

    #[test]
    fn type_check_person_place_date_numeric() {
        let kb = kb();
        let pamuk = Term::Iri(Iri::new(relpat_rdf::vocab::res::iri("Orhan Pamuk")));
        let ankara = Term::Iri(Iri::new(relpat_rdf::vocab::res::iri("Ankara")));
        let date = Term::Literal(Literal::date(1952, 6, 7));
        let num = Term::Literal(Literal::double(1.98));
        assert!(type_check(kb, &pamuk, ExpectedType::PersonOrOrganization));
        assert!(!type_check(kb, &pamuk, ExpectedType::Place));
        assert!(type_check(kb, &ankara, ExpectedType::Place));
        assert!(!type_check(kb, &ankara, ExpectedType::Date));
        assert!(type_check(kb, &date, ExpectedType::Date));
        assert!(type_check(kb, &num, ExpectedType::Numeric));
        assert!(!type_check(kb, &date, ExpectedType::Numeric));
        assert!(type_check(kb, &date, ExpectedType::Unconstrained));
    }

    #[test]
    fn picks_highest_scoring_nonempty_query() {
        let kb = kb();
        let queries = vec![
            bq("SELECT ?x { ?x rdf:type dbont:Museum }", 10.0), // empty in tiny KB? maybe
            bq("SELECT ?x { ?x dbont:author res:Orhan_Pamuk }", 5.0),
        ];
        let ans = extract_answer(kb, ExpectedType::Unconstrained, false, &queries, &AnswerConfig::default())
            .unwrap();
        // Whichever query produced results, the value must be non-empty and
        // provenance recorded.
        match ans.value {
            AnswerValue::Terms(ts) => assert!(!ts.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        assert!(!ans.sparql.is_empty());
    }

    #[test]
    fn type_filter_rejects_wrong_kind() {
        let kb = kb();
        // Query returns books, but we expect a date → no answer.
        let queries = vec![bq("SELECT ?x { ?x dbont:author res:Orhan_Pamuk }", 5.0)];
        let ans = extract_answer(kb, ExpectedType::Date, false, &queries, &AnswerConfig::default());
        assert!(ans.is_none());
        // Without the type check the books come through (ablation A3).
        let loose = AnswerConfig { use_type_check: false, ..AnswerConfig::default() };
        assert!(extract_answer(kb, ExpectedType::Date, false, &queries, &loose).is_some());
    }

    #[test]
    fn ask_true_and_all_false() {
        let kb = kb();
        let yes = vec![bq("ASK { res:Snow dbont:author res:Orhan_Pamuk }", 2.0)];
        let ans = extract_answer(kb, ExpectedType::Boolean, true, &yes, &AnswerConfig::default())
            .unwrap();
        assert_eq!(ans.value, AnswerValue::Boolean(true));

        let no = vec![bq("ASK { res:Dune dbont:author res:Orhan_Pamuk }", 2.0)];
        let ans = extract_answer(kb, ExpectedType::Boolean, true, &no, &AnswerConfig::default())
            .unwrap();
        assert_eq!(ans.value, AnswerValue::Boolean(false));
    }

    #[test]
    fn lower_scored_fallback_when_top_is_empty() {
        let kb = kb();
        let queries = vec![
            bq("SELECT ?x { res:Frank_Herbert dbont:birthPlace ?x }", 10.0), // no fact
            bq("SELECT ?x { res:Abraham_Lincoln dbont:deathPlace ?x }", 1.0),
        ];
        let ans = extract_answer(kb, ExpectedType::Place, false, &queries, &AnswerConfig::default())
            .unwrap();
        assert!(ans.sparql.contains("Abraham_Lincoln"));
        assert_eq!(ans.score, 1.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let kb = kb();
        let queries: Vec<BuiltQuery> = (0..12)
            .map(|i| {
                bq(
                    "SELECT ?x { ?x rdf:type dbont:Book . ?x dbont:author res:Orhan_Pamuk }",
                    12.0 - i as f64,
                )
            })
            .collect();
        let seq = extract_answer(kb, ExpectedType::Unconstrained, false, &queries, &AnswerConfig::default());
        let par = extract_answer(
            kb,
            ExpectedType::Unconstrained,
            false,
            &queries,
            &AnswerConfig { parallel: true, ..AnswerConfig::default() },
        );
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_queries_yield_none() {
        let kb = kb();
        assert!(extract_answer(kb, ExpectedType::Unconstrained, false, &[], &AnswerConfig::default())
            .is_none());
    }

    #[test]
    fn malformed_query_is_skipped_not_fatal() {
        let kb = kb();
        let queries = vec![
            bq("SELECT ?x { broken", 10.0),
            bq("SELECT ?x { res:Turkey dbont:capital ?x }", 1.0),
        ];
        let ans = extract_answer(kb, ExpectedType::Unconstrained, false, &queries, &AnswerConfig::default())
            .unwrap();
        assert!(ans.sparql.contains("capital"));
    }

    #[test]
    fn result_kind_mismatch_counts_as_failed_not_empty() {
        let kb = kb();
        // A SELECT candidate for a polar question (and vice versa) is a
        // malformed candidate: it must be counted under `failed` and the
        // well-formed fallback must still win — never a panic, never a
        // silent "no answer" bucket.
        let polar = vec![
            bq("SELECT ?x { res:Snow dbont:author ?x }", 10.0),
            bq("ASK { res:Snow dbont:author res:Orhan_Pamuk }", 1.0),
        ];
        let (ans, stats) =
            extract_answer_traced(kb, ExpectedType::Boolean, true, &polar, &exhaustive());
        assert_eq!(ans.unwrap().value, AnswerValue::Boolean(true));
        assert_eq!(stats.failed, 1, "{stats:?}");

        let list = vec![
            bq("ASK { res:Snow dbont:author res:Orhan_Pamuk }", 10.0),
            bq("SELECT ?x { res:Turkey dbont:capital ?x }", 1.0),
        ];
        let (ans, stats) =
            extract_answer_traced(kb, ExpectedType::Unconstrained, false, &list, &exhaustive());
        assert!(ans.unwrap().sparql.contains("capital"));
        assert_eq!(stats.failed, 1, "{stats:?}");
    }

    #[test]
    fn early_termination_stops_at_first_survivor() {
        let kb = kb();
        let queries = vec![
            bq("SELECT ?x { ?x dbont:author res:Orhan_Pamuk }", 10.0), // survives
            bq("SELECT ?x { res:Turkey dbont:capital ?x }", 5.0),      // never sent
            bq("SELECT ?x { res:Turkey dbont:capital ?x }", 1.0),      // never sent
        ];
        let (early, stats) = extract_answer_traced(
            kb,
            ExpectedType::Unconstrained,
            false,
            &queries,
            &AnswerConfig::default(),
        );
        assert_eq!(stats.executed, 1, "{stats:?}");
        assert_eq!(stats.survived, 1);

        let (full, full_stats) =
            extract_answer_traced(kb, ExpectedType::Unconstrained, false, &queries, &exhaustive());
        assert_eq!(full_stats.executed, 3);
        assert_eq!(full_stats.survived, 3);
        // The escape hatch changes cost, never the answer.
        assert_eq!(early, full);
    }

    #[test]
    fn exhaustive_reports_true_executed_count() {
        let kb = kb();
        // No survivor anywhere → both modes execute everything.
        let queries = vec![
            bq("SELECT ?x { res:Frank_Herbert dbont:birthPlace ?x }", 2.0),
            bq("SELECT ?x { res:Frank_Herbert dbont:deathPlace ?x }", 1.0),
        ];
        for config in [AnswerConfig::default(), exhaustive()] {
            let (ans, stats) =
                extract_answer_traced(kb, ExpectedType::Place, false, &queries, &config);
            assert!(ans.is_none());
            assert_eq!(stats.executed, 2);
            assert_eq!(stats.survived, 0);
        }
    }

    #[test]
    fn ask_early_termination_stops_at_first_true() {
        let kb = kb();
        let queries = vec![
            bq("ASK { res:Dune dbont:author res:Orhan_Pamuk }", 9.0), // false
            bq("ASK { res:Snow dbont:author res:Orhan_Pamuk }", 5.0), // true → stop
            bq("ASK { res:Snow dbont:author res:Orhan_Pamuk }", 1.0), // never sent
        ];
        let (ans, stats) = extract_answer_traced(
            kb,
            ExpectedType::Boolean,
            true,
            &queries,
            &AnswerConfig::default(),
        );
        assert_eq!(ans.unwrap().value, AnswerValue::Boolean(true));
        assert_eq!(stats.executed, 2, "{stats:?}");
        assert_eq!(stats.survived, 1);
    }

    #[test]
    fn all_failed_ask_batch_reports_failures() {
        let kb = kb();
        let queries = vec![bq("ASK { nope", 3.0), bq("ASK { also broken", 1.0)];
        let (ans, stats) = extract_answer_traced(
            kb,
            ExpectedType::Boolean,
            true,
            &queries,
            &AnswerConfig::default(),
        );
        assert!(ans.is_none());
        assert_eq!(stats.executed, 2);
        assert_eq!(stats.survived, 0);
        assert_eq!(stats.failed, 2, "failed parses must be distinguished");
    }

    #[test]
    fn dedup_preserves_first_seen_order_on_large_result_sets() {
        let kb = kb();
        // Every (subject, object) pair in the KB: thousands of rows with
        // heavy duplication across columns.
        let queries = vec![bq("SELECT ?s ?o { ?s ?p ?o }", 1.0)];
        let (ans, _) = extract_answer_traced(
            kb,
            ExpectedType::Unconstrained,
            false,
            &queries,
            &AnswerConfig::default(),
        );
        let AnswerValue::Terms(terms) = ans.unwrap().value else { panic!("expected terms") };
        assert!(terms.len() > 200, "want a large result set, got {}", terms.len());
        // Reference dedup: the old O(n²) Vec::contains approach.
        let mut reference: Vec<Term> = Vec::new();
        let sols = match kb.query("SELECT ?s ?o { ?s ?p ?o }").unwrap() {
            relpat_sparql::QueryResult::Solutions(s) => s,
            other => panic!("unexpected {other:?}"),
        };
        for row in &sols.rows {
            for cell in row.iter().flatten() {
                if !reference.contains(cell) {
                    reference.push(cell.clone());
                }
            }
        }
        assert_eq!(terms, reference);
    }

    #[test]
    fn explained_extraction_collects_one_plan_per_executed_query() {
        let kb = kb();
        // Texts carry a LIMIT marker no other test uses, so the shared
        // cache cannot have warmed them from a concurrently running test.
        let queries = vec![
            bq("SELECT ?x { broken", 10.0), // parse failure: no plan
            bq("SELECT ?x { res:Frank_Herbert dbont:birthPlace ?x } LIMIT 9391", 5.0), // empty
            bq("SELECT ?x { ?x dbont:author res:Orhan_Pamuk } LIMIT 9391", 2.0), // survives → stop
            bq("SELECT ?x { res:Turkey dbont:capital ?x } LIMIT 9391", 1.0),     // never sent
        ];
        let mut plans = Vec::new();
        let (ans, stats) = extract_answer_explained(
            kb,
            ExpectedType::Unconstrained,
            false,
            &queries,
            &AnswerConfig::default(),
            &mut plans,
        );
        assert!(ans.is_some());
        assert_eq!(stats.executed, 3);
        assert_eq!(stats.failed, 1);
        assert_eq!(plans.len(), 2, "one plan per successfully executed query");
        assert_eq!(plans[0].sparql, queries[1].sparql);
        assert_eq!(plans[1].sparql, queries[2].sparql);
        assert!(plans.iter().all(|p| !p.trace.cache_hit && !p.trace.steps.is_empty()));
        // Identical answer to the unexplained path, and a repeat run sees
        // cache hits instead of fresh executions.
        let (plain, _) = extract_answer_traced(
            kb,
            ExpectedType::Unconstrained,
            false,
            &queries,
            &AnswerConfig::default(),
        );
        assert_eq!(ans, plain);
        let mut replans = Vec::new();
        extract_answer_explained(
            kb,
            ExpectedType::Unconstrained,
            false,
            &queries,
            &AnswerConfig::default(),
            &mut replans,
        );
        assert!(replans.iter().all(|p| p.trace.cache_hit && p.trace.rows_scanned() == 0));
    }

    #[test]
    fn parallel_early_termination_matches_exhaustive_answer() {
        let kb = kb();
        // 16 queries: rank 0..13 empty, rank 14 survives, rank 15 unseen.
        let mut queries: Vec<BuiltQuery> = (0..14)
            .map(|i| bq("SELECT ?x { res:Frank_Herbert dbont:birthPlace ?x }", 20.0 - i as f64))
            .collect();
        queries.push(bq("SELECT ?x { ?x dbont:author res:Orhan_Pamuk }", 2.0));
        queries.push(bq("SELECT ?x { res:Turkey dbont:capital ?x }", 1.0));
        let parallel_early = AnswerConfig { parallel: true, ..AnswerConfig::default() };
        let (par, par_stats) = extract_answer_traced(
            kb,
            ExpectedType::Unconstrained,
            false,
            &queries,
            &parallel_early,
        );
        let (seq, _) =
            extract_answer_traced(kb, ExpectedType::Unconstrained, false, &queries, &exhaustive());
        assert_eq!(par, seq);
        assert!(par_stats.executed <= queries.len() as u64);
        assert!(par_stats.executed >= 1);
    }
}
