//! Answer extraction: execute candidate queries, type-check, rank (§2.3).
//!
//! Queries run in ranking-score order (optionally evaluated in parallel);
//! candidate answers are filtered by the question's expected answer type
//! (Table 1) and the highest-scoring query with surviving answers wins.

use relpat_kb::KnowledgeBase;
use relpat_rdf::Term;

use crate::queries::BuiltQuery;
use crate::triples::ExpectedType;

/// A produced answer.
#[derive(Debug, Clone, PartialEq)]
pub enum AnswerValue {
    /// Result set of the winning `SELECT` query.
    Terms(Vec<Term>),
    /// Verdict of a polar (`ASK`) question.
    Boolean(bool),
}

/// The chosen answer with its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    pub value: AnswerValue,
    /// The SPARQL query that produced it.
    pub sparql: String,
    /// Its ranking score (§2.3.1: product of predicate frequencies).
    pub score: f64,
}

/// Table 1 of the paper: does a term satisfy the expected answer type?
pub fn type_check(kb: &KnowledgeBase, term: &Term, expected: ExpectedType) -> bool {
    match expected {
        ExpectedType::Unconstrained | ExpectedType::Boolean => true,
        ExpectedType::PersonOrOrganization => match term {
            Term::Iri(iri) => {
                kb.is_instance_of(iri, "Person")
                    || kb.is_instance_of(iri, "Organisation")
                    || kb.is_instance_of(iri, "Company")
            }
            _ => false,
        },
        ExpectedType::Place => match term {
            Term::Iri(iri) => kb.is_instance_of(iri, "Place"),
            _ => false,
        },
        ExpectedType::Date => term.as_literal().is_some_and(|l| l.is_date()),
        ExpectedType::Numeric => term.as_literal().is_some_and(|l| l.is_numeric()),
    }
}

/// Configuration for answer extraction.
#[derive(Debug, Clone)]
pub struct AnswerConfig {
    /// Apply Table-1 expected-type filtering (ablation A3 switches it off).
    pub use_type_check: bool,
    /// Evaluate candidate queries on a thread pool.
    pub parallel: bool,
}

impl Default for AnswerConfig {
    fn default() -> Self {
        AnswerConfig { use_type_check: true, parallel: false }
    }
}

/// Execution statistics for one batch of candidate queries (feeds the
/// per-question [`relpat_obs::QuestionTrace`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Queries actually sent to the SPARQL engine.
    pub executed: u64,
    /// Queries whose results survived execution + type checking (for `ASK`:
    /// candidates that evaluated to `true`).
    pub survived: u64,
}

/// Runs the candidate queries and picks the answer.
///
/// `SELECT`: the highest-scored query whose type-checked result set is
/// non-empty supplies the answer set. `ASK`: the highest-scored query that
/// holds answers `true`; if every candidate is false the answer is `false`
/// (the system did find consistent readings, none of which hold).
pub fn extract_answer(
    kb: &KnowledgeBase,
    expected: ExpectedType,
    ask: bool,
    queries: &[BuiltQuery],
    config: &AnswerConfig,
) -> Option<Answer> {
    extract_answer_traced(kb, expected, ask, queries, config).0
}

/// [`extract_answer`] plus the execution statistics the trace records.
pub fn extract_answer_traced(
    kb: &KnowledgeBase,
    expected: ExpectedType,
    ask: bool,
    queries: &[BuiltQuery],
    config: &AnswerConfig,
) -> (Option<Answer>, ExecStats) {
    if queries.is_empty() {
        return (None, ExecStats::default());
    }
    let results = run_all(kb, queries, config);
    let mut stats = ExecStats { executed: queries.len() as u64, survived: 0 };

    if ask {
        let mut answer: Option<Answer> = None;
        let mut first_false: Option<&BuiltQuery> = None;
        for (query, outcome) in queries.iter().zip(results.iter()) {
            match outcome {
                Outcome::Boolean(true) => {
                    stats.survived += 1;
                    if answer.is_none() {
                        answer = Some(Answer {
                            value: AnswerValue::Boolean(true),
                            sparql: query.sparql.clone(),
                            score: query.score,
                        });
                    }
                }
                Outcome::Boolean(false) if first_false.is_none() => {
                    first_false = Some(query);
                }
                _ => {}
            }
        }
        // All readings evaluated to false.
        let answer = answer.or_else(|| {
            first_false.map(|query| Answer {
                value: AnswerValue::Boolean(false),
                sparql: query.sparql.clone(),
                score: query.score,
            })
        });
        return (answer, stats);
    }

    let mut answer: Option<Answer> = None;
    for (query, outcome) in queries.iter().zip(results.iter()) {
        let Outcome::Terms(terms) = outcome else { continue };
        let filtered: Vec<Term> = terms
            .iter()
            .filter(|t| !config.use_type_check || type_check(kb, t, expected))
            .cloned()
            .collect();
        if !filtered.is_empty() {
            stats.survived += 1;
            if answer.is_none() {
                answer = Some(Answer {
                    value: AnswerValue::Terms(filtered),
                    sparql: query.sparql.clone(),
                    score: query.score,
                });
            }
        }
    }
    (answer, stats)
}

#[derive(Debug)]
enum Outcome {
    Terms(Vec<Term>),
    Boolean(bool),
    Failed,
}

fn run_one(kb: &KnowledgeBase, query: &BuiltQuery) -> Outcome {
    match kb.query(&query.sparql) {
        Ok(relpat_sparql::QueryResult::Solutions(sols)) => {
            let mut terms: Vec<Term> = Vec::new();
            for row in &sols.rows {
                for cell in row.iter().flatten() {
                    if !terms.contains(cell) {
                        terms.push(cell.clone());
                    }
                }
            }
            Outcome::Terms(terms)
        }
        Ok(relpat_sparql::QueryResult::Boolean(b)) => Outcome::Boolean(b),
        Err(_) => Outcome::Failed,
    }
}

/// Evaluates every query, sequentially or via std scoped threads. Results
/// come back in input order either way, so the ranked selection is
/// deterministic.
fn run_all(kb: &KnowledgeBase, queries: &[BuiltQuery], config: &AnswerConfig) -> Vec<Outcome> {
    if !config.parallel || queries.len() < 4 {
        return queries.iter().map(|q| run_one(kb, q)).collect();
    }
    let workers = std::thread::available_parallelism().map(usize::from).unwrap_or(4).min(8);
    let chunk = queries.len().div_ceil(workers);
    let mut results: Vec<Outcome> = Vec::with_capacity(queries.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move || slice.iter().map(|q| run_one(kb, q)).collect::<Vec<_>>())
            })
            .collect();
        for h in handles {
            results.extend(h.join().expect("query worker panicked"));
        }
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use relpat_kb::{generate, KbConfig, KnowledgeBase};
    use relpat_rdf::{Iri, Literal};
    use std::sync::OnceLock;

    fn kb() -> &'static KnowledgeBase {
        static KB: OnceLock<KnowledgeBase> = OnceLock::new();
        KB.get_or_init(|| generate(&KbConfig::tiny()))
    }

    fn bq(sparql: &str, score: f64) -> BuiltQuery {
        BuiltQuery { sparql: sparql.to_string(), score }
    }

    #[test]
    fn type_check_person_place_date_numeric() {
        let kb = kb();
        let pamuk = Term::Iri(Iri::new(relpat_rdf::vocab::res::iri("Orhan Pamuk")));
        let ankara = Term::Iri(Iri::new(relpat_rdf::vocab::res::iri("Ankara")));
        let date = Term::Literal(Literal::date(1952, 6, 7));
        let num = Term::Literal(Literal::double(1.98));
        assert!(type_check(kb, &pamuk, ExpectedType::PersonOrOrganization));
        assert!(!type_check(kb, &pamuk, ExpectedType::Place));
        assert!(type_check(kb, &ankara, ExpectedType::Place));
        assert!(!type_check(kb, &ankara, ExpectedType::Date));
        assert!(type_check(kb, &date, ExpectedType::Date));
        assert!(type_check(kb, &num, ExpectedType::Numeric));
        assert!(!type_check(kb, &date, ExpectedType::Numeric));
        assert!(type_check(kb, &date, ExpectedType::Unconstrained));
    }

    #[test]
    fn picks_highest_scoring_nonempty_query() {
        let kb = kb();
        let queries = vec![
            bq("SELECT ?x { ?x rdf:type dbont:Museum }", 10.0), // empty in tiny KB? maybe
            bq("SELECT ?x { ?x dbont:author res:Orhan_Pamuk }", 5.0),
        ];
        let ans = extract_answer(kb, ExpectedType::Unconstrained, false, &queries, &AnswerConfig::default())
            .unwrap();
        // Whichever query produced results, the value must be non-empty and
        // provenance recorded.
        match ans.value {
            AnswerValue::Terms(ts) => assert!(!ts.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        assert!(!ans.sparql.is_empty());
    }

    #[test]
    fn type_filter_rejects_wrong_kind() {
        let kb = kb();
        // Query returns books, but we expect a date → no answer.
        let queries = vec![bq("SELECT ?x { ?x dbont:author res:Orhan_Pamuk }", 5.0)];
        let ans = extract_answer(kb, ExpectedType::Date, false, &queries, &AnswerConfig::default());
        assert!(ans.is_none());
        // Without the type check the books come through (ablation A3).
        let loose = AnswerConfig { use_type_check: false, ..AnswerConfig::default() };
        assert!(extract_answer(kb, ExpectedType::Date, false, &queries, &loose).is_some());
    }

    #[test]
    fn ask_true_and_all_false() {
        let kb = kb();
        let yes = vec![bq("ASK { res:Snow dbont:author res:Orhan_Pamuk }", 2.0)];
        let ans = extract_answer(kb, ExpectedType::Boolean, true, &yes, &AnswerConfig::default())
            .unwrap();
        assert_eq!(ans.value, AnswerValue::Boolean(true));

        let no = vec![bq("ASK { res:Dune dbont:author res:Orhan_Pamuk }", 2.0)];
        let ans = extract_answer(kb, ExpectedType::Boolean, true, &no, &AnswerConfig::default())
            .unwrap();
        assert_eq!(ans.value, AnswerValue::Boolean(false));
    }

    #[test]
    fn lower_scored_fallback_when_top_is_empty() {
        let kb = kb();
        let queries = vec![
            bq("SELECT ?x { res:Frank_Herbert dbont:birthPlace ?x }", 10.0), // no fact
            bq("SELECT ?x { res:Abraham_Lincoln dbont:deathPlace ?x }", 1.0),
        ];
        let ans = extract_answer(kb, ExpectedType::Place, false, &queries, &AnswerConfig::default())
            .unwrap();
        assert!(ans.sparql.contains("Abraham_Lincoln"));
        assert_eq!(ans.score, 1.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let kb = kb();
        let queries: Vec<BuiltQuery> = (0..12)
            .map(|i| {
                bq(
                    "SELECT ?x { ?x rdf:type dbont:Book . ?x dbont:author res:Orhan_Pamuk }",
                    12.0 - i as f64,
                )
            })
            .collect();
        let seq = extract_answer(kb, ExpectedType::Unconstrained, false, &queries, &AnswerConfig::default());
        let par = extract_answer(
            kb,
            ExpectedType::Unconstrained,
            false,
            &queries,
            &AnswerConfig { parallel: true, ..AnswerConfig::default() },
        );
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_queries_yield_none() {
        let kb = kb();
        assert!(extract_answer(kb, ExpectedType::Unconstrained, false, &[], &AnswerConfig::default())
            .is_none());
    }

    #[test]
    fn malformed_query_is_skipped_not_fatal() {
        let kb = kb();
        let queries = vec![
            bq("SELECT ?x { broken", 10.0),
            bq("SELECT ?x { res:Turkey dbont:capital ?x }", 1.0),
        ];
        let ans = extract_answer(kb, ExpectedType::Unconstrained, false, &queries, &AnswerConfig::default())
            .unwrap();
        assert!(ans.sparql.contains("capital"));
    }
}
