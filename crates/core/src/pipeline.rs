//! The end-to-end question answering pipeline.
//!
//! Wires the paper's three steps — triple pattern extraction (§2.1), entity
//! and property extraction (§2.2), answer extraction (§2.3) — behind one
//! `answer()` call, and records at which stage a question fell out (the
//! paper's "not attempted" bucket).

use relpat_kb::KnowledgeBase;
use relpat_obs::fx::FxHashMap;
use relpat_obs::{QuestionTrace, TraceAnswer, TraceCandidate, TraceTriple};
use relpat_patterns::{mine, CorpusConfig, PatternStore};
use relpat_wordnet::{embedded, WordNet};

use crate::answer::{
    extract_answer_explained, extract_answer_traced, Answer, AnswerConfig, AnswerValue, ExecStats,
};
use crate::extensions::ExtensionConfig;
use crate::mapping::{
    similar_property_pairs, MappedQuestion, MappedSlot, MappedTriple, Mapper, MappingConfig,
};
use crate::queries::{build_queries_planned, BuiltQuery, PlanStats, PlannerStrategy};
use crate::triples::{extract, QuestionAnalysis};

/// Where processing stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// §2.1 produced no triples — question structure not covered.
    ExtractionFailed,
    /// §2.2 could not resolve an entity/class/property slot.
    MappingFailed,
    /// Queries ran but nothing survived execution + type checking.
    NoAnswer,
    /// An answer was produced.
    Answered,
}

/// Full configuration (mapping knobs + answer knobs + query cap +
/// future-work extensions).
#[derive(Debug, Clone, Default)]
pub struct PipelineConfig {
    pub mapping: MappingConfig,
    pub answer: AnswerConfig,
    pub max_queries: usize,
    /// How §2.3 candidate assignments are searched; the beam planner is the
    /// default, [`PlannerStrategy::CartesianExhaustive`] is the differential
    /// reference.
    pub planner: PlannerStrategy,
    /// §5/§6 future-work extensions; all off in the paper configuration.
    pub extensions: ExtensionConfig,
}

impl PipelineConfig {
    /// The default configuration used for the Table-2 reproduction.
    pub fn standard() -> Self {
        PipelineConfig {
            mapping: MappingConfig::default(),
            answer: AnswerConfig::default(),
            max_queries: 50,
            planner: PlannerStrategy::default(),
            extensions: ExtensionConfig::default(),
        }
    }

    /// The extended system: every §5/§6 extension enabled, including the
    /// data-property patterns that close the paper's stated research gap.
    pub fn extended() -> Self {
        PipelineConfig {
            extensions: ExtensionConfig::all(),
            mapping: MappingConfig { use_data_patterns: true, ..MappingConfig::default() },
            ..Self::standard()
        }
    }
}

/// Everything the pipeline did for one question.
#[derive(Debug, Clone)]
pub struct Response {
    pub question: String,
    pub stage: Stage,
    pub analysis: Option<QuestionAnalysis>,
    pub mapped: Option<MappedQuestion>,
    /// Ranked candidate queries (§2.3).
    pub queries: Vec<BuiltQuery>,
    pub answer: Option<Answer>,
    /// Structured record of the run: extracted patterns, candidate counts,
    /// query counts, pattern-store hits/misses, per-stage durations.
    /// Serialize with `trace.to_json()`.
    pub trace: QuestionTrace,
}

impl Response {
    /// True when the system produced an answer (the paper's "processed"
    /// bucket: 18 of 55).
    pub fn is_answered(&self) -> bool {
        self.stage == Stage::Answered
    }

    /// Human-readable labels/lexical forms of the answer terms (empty when
    /// unanswered; `["true"|"false"]` for polar questions).
    pub fn answer_texts(&self, kb: &KnowledgeBase) -> Vec<String> {
        match &self.answer {
            Some(ans) => answer_value_texts(kb, &ans.value),
            None => Vec::new(),
        }
    }

    /// Renders a step-by-step walkthrough of what the pipeline did — the
    /// paper's §2 narrative for this question.
    ///
    /// Defined as exactly [`QuestionTrace::render`] over [`Self::trace`],
    /// so the explanation can never drift from the structured trace. The
    /// `kb` parameter is kept for API stability (answer labels are resolved
    /// into the trace when the response is built).
    pub fn explain(&self, _kb: &KnowledgeBase) -> String {
        self.trace.render()
    }
}

/// Renders answer terms to display text (labels for IRIs, lexical forms for
/// literals, `true`/`false` for booleans).
fn answer_value_texts(kb: &KnowledgeBase, value: &AnswerValue) -> Vec<String> {
    match value {
        AnswerValue::Terms(terms) => terms
            .iter()
            .map(|t| match t {
                relpat_rdf::Term::Iri(iri) => {
                    kb.label_of(iri).unwrap_or(iri.local_name()).to_string()
                }
                relpat_rdf::Term::Literal(l) => l.lexical_form().to_string(),
                other => other.to_string(),
            })
            .collect(),
        AnswerValue::Boolean(b) => vec![b.to_string()],
    }
}

/// Builds the derivable part of a [`QuestionTrace`] from response contents.
/// Callers fill in execution stats, pattern-lookup deltas and stage timings.
pub(crate) fn trace_for(
    kb: &KnowledgeBase,
    question: &str,
    stage: Stage,
    analysis: Option<&QuestionAnalysis>,
    mapped: Option<&MappedQuestion>,
    queries: &[BuiltQuery],
    answer: Option<&Answer>,
) -> QuestionTrace {
    let mut trace = QuestionTrace::new(question);
    trace.stage = format!("{stage:?}");
    if let Some(a) = analysis {
        trace.kind = Some(format!("{:?}", a.kind));
        trace.expected = Some(format!("{:?}", a.expected));
        trace.extraction = Some(a.to_bucket_string());
    }
    if let Some(m) = mapped {
        trace.triples = m
            .triples
            .iter()
            .map(|t| match t {
                MappedTriple::Type { class } => TraceTriple {
                    head: format!("?x rdf:type dbont:{class}"),
                    candidates: Vec::new(),
                },
                MappedTriple::Relation { subject, object, candidates } => {
                    let render = |s: &MappedSlot| match s {
                        MappedSlot::Var => "?x".to_string(),
                        MappedSlot::Entity(e) => format!("{} <{}>", e.label, e.iri.as_str()),
                    };
                    TraceTriple {
                        head: format!("[{}] —?— [{}]", render(subject), render(object)),
                        candidates: candidates
                            .iter()
                            .map(|c| TraceCandidate {
                                property: c.property.clone(),
                                weight: c.weight,
                                source: format!("{:?}", c.source),
                            })
                            .collect(),
                    }
                }
            })
            .collect();
    }
    trace.queries_built = queries.len() as u64;
    trace.top_queries = queries.iter().take(5).map(|q| (q.score, q.sparql.clone())).collect();
    if let Some(ans) = answer {
        trace.answer = Some(TraceAnswer {
            texts: answer_value_texts(kb, &ans.value),
            score: ans.score,
            sparql: ans.sparql.clone(),
        });
    }
    trace
}

/// The question answering system.
pub struct Pipeline<'kb> {
    kb: &'kb KnowledgeBase,
    wordnet: &'static WordNet,
    patterns: PatternStore,
    similar_pairs: FxHashMap<String, Vec<(String, f64)>>,
    config: PipelineConfig,
}

impl<'kb> Pipeline<'kb> {
    /// Builds the pipeline with default configuration: mines relational
    /// patterns from the synthesized corpus and precomputes the WordNet
    /// similar-property list.
    pub fn new(kb: &'kb KnowledgeBase) -> Self {
        Self::with_config(kb, PipelineConfig::standard())
    }

    /// Builds with a custom configuration (ablation entry point). When
    /// extensions are enabled the mined corpus includes data-property
    /// sentences, closing the paper's §5 research gap.
    pub fn with_config(kb: &'kb KnowledgeBase, config: PipelineConfig) -> Self {
        let corpus = if config.extensions.any() {
            CorpusConfig::with_data_properties()
        } else {
            CorpusConfig::default()
        };
        let mined = mine(kb, &corpus);
        Self::with_pattern_store(kb, mined.store, config)
    }

    /// The extended system: paper pipeline + all §5/§6 future-work
    /// extensions (existence, superlative and count questions, data-property
    /// patterns).
    pub fn extended(kb: &'kb KnowledgeBase) -> Self {
        Self::with_config(kb, PipelineConfig::extended())
    }

    /// Builds with a pre-mined pattern store (lets callers reuse mining
    /// output across pipelines/ablations).
    pub fn with_pattern_store(
        kb: &'kb KnowledgeBase,
        patterns: PatternStore,
        config: PipelineConfig,
    ) -> Self {
        let wordnet = embedded();
        let similar_pairs = similar_property_pairs(kb, wordnet);
        Pipeline { kb, wordnet, patterns, similar_pairs, config }
    }

    /// The knowledge base this pipeline answers against.
    pub fn kb(&self) -> &KnowledgeBase {
        self.kb
    }

    /// The mined pattern store.
    pub fn patterns(&self) -> &PatternStore {
        &self.patterns
    }

    /// Current configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Replaces the configuration (for ablation sweeps on a built pipeline).
    pub fn set_config(&mut self, config: PipelineConfig) {
        self.config = config;
    }

    fn mapper(&self) -> Mapper<'_> {
        Mapper {
            kb: self.kb,
            wordnet: self.wordnet,
            patterns: &self.patterns,
            similar_pairs: &self.similar_pairs,
            config: self.config.mapping.clone(),
        }
    }

    /// Answers a natural-language question.
    pub fn answer(&self, question: &str) -> Response {
        self.answer_impl(question, false)
    }

    /// Answers with EXPLAIN ANALYZE: identical to [`answer`](Self::answer)
    /// except the response's `trace.plans` carries one [`QueryPlan`] per
    /// SPARQL query executed for the question (planner estimates vs. actual
    /// rows scanned per join step; cache hits flagged). Candidate execution
    /// runs the deterministic sequential sweep; answers are unchanged.
    ///
    /// [`QueryPlan`]: relpat_obs::QueryPlan
    pub fn answer_explained(&self, question: &str) -> Response {
        self.answer_impl(question, true)
    }

    fn answer_impl(&self, question: &str, explain: bool) -> Response {
        let _timer = relpat_obs::span!("qa.total");
        let graph = relpat_nlp::parse_sentence(question);
        let response = self.standard_answer(question, &graph, explain);
        if response.stage != Stage::Answered && self.config.extensions.any() {
            if let Some(extended) = crate::extensions::try_answer(
                &self.mapper(),
                self.config.extensions,
                question,
                &graph,
                &response,
            ) {
                return extended;
            }
        }
        response
    }

    /// Answers a batch of questions, sharding them across scoped worker
    /// threads (one per available core, capped at 8). Responses come back
    /// in input order. See [`answer_batch_with`](Self::answer_batch_with).
    pub fn answer_batch(&self, questions: &[&str]) -> Vec<Response> {
        let workers = std::thread::available_parallelism().map(usize::from).unwrap_or(4).min(8);
        self.answer_batch_with(questions, workers)
    }

    /// Answers a batch of questions on exactly `threads` worker threads
    /// (1 = the plain sequential loop). Workers claim questions from a
    /// shared atomic cursor, so a slow question never stalls the rest of
    /// the batch, and the output is index-aligned with the input.
    ///
    /// Each response is identical to what [`answer`](Self::answer) returns
    /// for that question, with one caveat: the per-question
    /// `trace.pattern_lookups` attribution samples the shared pattern
    /// store's counters around the mapping stage, so under concurrency a
    /// question's delta may include lookups from questions in flight on
    /// other workers (the totals across the batch remain exact).
    pub fn answer_batch_with(&self, questions: &[&str], threads: usize) -> Vec<Response> {
        let threads = threads.max(1).min(questions.len().max(1));
        if threads == 1 {
            return questions.iter().map(|q| self.answer(q)).collect();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut slots: Vec<Option<Response>> = (0..questions.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut mine: Vec<(usize, Response)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(question) = questions.get(i) else { break };
                            mine.push((i, self.answer(question)));
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                for (i, r) in h.join().expect("batch worker panicked") {
                    slots[i] = Some(r);
                }
            }
        });
        slots.into_iter().map(|r| r.expect("every question answered")).collect()
    }

    /// The paper's three-stage pipeline (no extensions), instrumented: each
    /// stage is timed into the global `qa.*` histograms and recorded in the
    /// response's [`QuestionTrace`], and pattern-store lookups during
    /// mapping are attributed to this question by sampling the store's
    /// counters around the stage (accurate under the sequential
    /// one-question-at-a-time evaluation loop).
    /// With `explain` set, answer extraction also collects per-query plan
    /// traces into the response's `trace.plans`.
    fn standard_answer(
        &self,
        question: &str,
        graph: &relpat_nlp::DepGraph,
        explain: bool,
    ) -> Response {
        let mut timings: Vec<(&'static str, u64)> = Vec::new();
        let lookups_before = self.patterns.lookup_stats();

        let timer = relpat_obs::span!("qa.extract");
        let analysis = extract(graph);
        timings.push(("extract", timer.finish()));
        let Some(analysis) = analysis else {
            return self.finish(
                question,
                Stage::ExtractionFailed,
                None,
                None,
                Vec::new(),
                None,
                ExecStats::default(),
                None,
                &lookups_before,
                timings,
            );
        };

        let timer = relpat_obs::span!("qa.map");
        let mapped = self.mapper().map(&analysis);
        timings.push(("map", timer.finish()));
        let Some(mapped) = mapped else {
            return self.finish(
                question,
                Stage::MappingFailed,
                Some(analysis),
                None,
                Vec::new(),
                None,
                ExecStats::default(),
                None,
                &lookups_before,
                timings,
            );
        };

        let timer = relpat_obs::span!("qa.build");
        let (queries, plan) = build_queries_planned(
            self.kb,
            &analysis,
            &mapped,
            self.config.max_queries.max(1),
            self.config.planner,
        );
        timings.push(("build", timer.finish()));
        if queries.is_empty() {
            return self.finish(
                question,
                Stage::MappingFailed,
                Some(analysis),
                Some(mapped),
                queries,
                None,
                ExecStats::default(),
                Some(plan),
                &lookups_before,
                timings,
            );
        }

        let timer = relpat_obs::span!("qa.answer");
        let mut plans = Vec::new();
        let (answer, exec) = if explain {
            extract_answer_explained(
                self.kb,
                analysis.expected,
                analysis.ask,
                &queries,
                &self.config.answer,
                &mut plans,
            )
        } else {
            extract_answer_traced(
                self.kb,
                analysis.expected,
                analysis.ask,
                &queries,
                &self.config.answer,
            )
        };
        timings.push(("answer", timer.finish()));
        let stage = if answer.is_some() { Stage::Answered } else { Stage::NoAnswer };
        let mut response = self.finish(
            question,
            stage,
            Some(analysis),
            Some(mapped),
            queries,
            answer,
            exec,
            Some(plan),
            &lookups_before,
            timings,
        );
        response.trace.plans = plans;
        response
    }

    /// Assembles the response plus its trace.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        question: &str,
        stage: Stage,
        analysis: Option<QuestionAnalysis>,
        mapped: Option<MappedQuestion>,
        queries: Vec<BuiltQuery>,
        answer: Option<Answer>,
        exec: ExecStats,
        plan: Option<PlanStats>,
        lookups_before: &relpat_obs::PatternLookupStats,
        timings: Vec<(&'static str, u64)>,
    ) -> Response {
        let mut trace = trace_for(
            self.kb,
            question,
            stage,
            analysis.as_ref(),
            mapped.as_ref(),
            &queries,
            answer.as_ref(),
        );
        trace.queries_executed = exec.executed;
        trace.queries_survived = exec.survived;
        trace.queries_failed = exec.failed;
        if let Some(plan) = plan {
            trace.planner = Some(self.config.planner.name().to_string());
            trace.plan_expanded = plan.expanded;
            trace.plan_pruned = plan.pruned;
            trace.plan_emitted = plan.emitted;
        }
        trace.pattern_lookups = self.patterns.lookup_stats().delta_since(lookups_before);
        for (name, nanos) in timings {
            trace.add_stage(name, nanos);
            relpat_obs::jevent!(
                relpat_obs::Level::Debug, "qa.stage",
                "stage" => name, "ns" => nanos,
            );
        }
        relpat_obs::jevent!(
            relpat_obs::Level::Info, "qa.question",
            "stage" => trace.stage,
            "total_ns" => trace.total_nanos(),
            "queries_executed" => trace.queries_executed,
        );
        Response {
            question: question.to_string(),
            stage,
            analysis,
            mapped,
            queries,
            answer,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::AnswerValue;
    use relpat_kb::{generate, KbConfig};
    
    use std::sync::OnceLock;

    fn pipeline() -> &'static Pipeline<'static> {
        static KB: OnceLock<KnowledgeBase> = OnceLock::new();
        static P: OnceLock<Pipeline<'static>> = OnceLock::new();
        P.get_or_init(|| {
            let kb = KB.get_or_init(|| generate(&KbConfig::tiny()));
            Pipeline::new(kb)
        })
    }

    fn answered_iris(r: &Response) -> Vec<String> {
        match &r.answer {
            Some(Answer { value: AnswerValue::Terms(ts), .. }) => ts
                .iter()
                .filter_map(|t| t.as_iri().map(|i| i.as_str().to_string()))
                .collect(),
            _ => Vec::new(),
        }
    }

    #[test]
    fn figure1_question_answers_pamuks_books() {
        let r = pipeline().answer("Which book is written by Orhan Pamuk?");
        assert!(r.is_answered(), "stage {:?}", r.stage);
        let iris = answered_iris(&r);
        assert_eq!(iris.len(), 3, "{iris:?}");
        assert!(iris.iter().any(|i| i.ends_with("Snow")));
    }

    #[test]
    fn how_tall_is_michael_jordan_gives_198() {
        let r = pipeline().answer("How tall is Michael Jordan?");
        assert!(r.is_answered());
        match &r.answer.as_ref().unwrap().value {
            AnswerValue::Terms(ts) => {
                let lit = ts[0].as_literal().unwrap();
                assert_eq!(lit.as_f64(), Some(1.98));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn where_did_lincoln_die_is_washington() {
        let r = pipeline().answer("Where did Abraham Lincoln die?");
        assert!(r.is_answered());
        let iris = answered_iris(&r);
        assert!(iris[0].ends_with("Washington"), "{iris:?}");
    }

    #[test]
    fn when_was_einstein_born_is_a_date() {
        let r = pipeline().answer("When was Albert Einstein born?");
        assert!(r.is_answered(), "stage {:?}", r.stage);
        match &r.answer.as_ref().unwrap().value {
            AnswerValue::Terms(ts) => {
                assert!(ts[0].as_literal().unwrap().is_date());
                assert_eq!(ts[0].as_literal().unwrap().lexical_form(), "1879-03-14");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn who_directed_titanic_is_cameron() {
        let r = pipeline().answer("Who directed Titanic?");
        assert!(r.is_answered());
        assert!(answered_iris(&r)[0].ends_with("James_Cameron"));
    }

    #[test]
    fn wife_of_obama_is_michelle() {
        let r = pipeline().answer("Who is the wife of Barack Obama?");
        assert!(r.is_answered(), "stage {:?}", r.stage);
        assert!(answered_iris(&r)[0].ends_with("Michelle_Obama"));
    }

    #[test]
    fn capital_of_turkey_is_ankara() {
        let r = pipeline().answer("What is the capital of Turkey?");
        assert!(r.is_answered());
        assert!(answered_iris(&r)[0].ends_with("Ankara"));
    }

    #[test]
    fn paper_failure_case_still_alive_unattempted() {
        let r = pipeline().answer("Is Frank Herbert still alive?");
        assert!(!r.is_answered());
        assert_eq!(r.stage, Stage::MappingFailed);
    }

    #[test]
    fn unparseable_question_fails_at_extraction() {
        let r = pipeline().answer("What is the highest mountain?");
        assert_eq!(r.stage, Stage::ExtractionFailed);
    }

    #[test]
    fn polar_question_answers_boolean() {
        let r = pipeline().answer("Was Abraham Lincoln married to Michelle Obama?");
        assert!(r.is_answered(), "stage {:?}", r.stage);
        assert_eq!(
            r.answer.as_ref().unwrap().value,
            AnswerValue::Boolean(false)
        );
    }

    #[test]
    fn give_me_all_films_by_cameron() {
        let r = pipeline().answer("Give me all films directed by James Cameron.");
        assert!(r.is_answered(), "stage {:?}", r.stage);
        assert_eq!(answered_iris(&r).len(), 2); // Titanic + Avatar
    }

    #[test]
    fn explain_traces_every_stage() {
        let r = pipeline().answer("Which book is written by Orhan Pamuk?");
        let kb = pipeline().kb();
        let trace = r.explain(kb);
        assert!(trace.contains("§2.1"));
        assert!(trace.contains("rdf:type"));
        assert!(trace.contains("§2.2"));
        assert!(trace.contains("dbont:author"));
        assert!(trace.contains("§2.3"));
        assert!(trace.contains("Answer"));
        assert!(trace.contains("Snow"));
    }

    #[test]
    fn explain_reports_failures() {
        let kb = pipeline().kb();
        let r = pipeline().answer("What is the highest mountain?");
        assert!(r.explain(kb).contains("FAILED"));
        let r = pipeline().answer("Is Frank Herbert still alive?");
        let trace = r.explain(kb);
        assert!(trace.contains("alive"));
        assert!(trace.contains("MappingFailed"));
    }

    #[test]
    fn answer_texts_render_labels_and_literals() {
        let kb = pipeline().kb();
        let r = pipeline().answer("How tall is Michael Jordan?");
        assert_eq!(r.answer_texts(kb), vec!["1.98"]);
        let r = pipeline().answer("Who directed Titanic?");
        assert_eq!(r.answer_texts(kb), vec!["James Cameron"]);
        let r = pipeline().answer("gibberish blargh");
        assert!(r.answer_texts(kb).is_empty());
    }

    #[test]
    fn answer_batch_preserves_order_and_matches_single_answers() {
        let p = pipeline();
        let questions = [
            "Which book is written by Orhan Pamuk?",
            "What is the capital of Turkey?",
            "gibberish blargh",
            "Who directed Titanic?",
            "How tall is Michael Jordan?",
        ];
        let batch = p.answer_batch_with(&questions, 4);
        assert_eq!(batch.len(), questions.len());
        for (question, response) in questions.iter().zip(batch.iter()) {
            let single = p.answer(question);
            assert_eq!(response.question, *question);
            assert_eq!(response.stage, single.stage, "{question}");
            assert_eq!(
                response.answer.as_ref().map(|a| (&a.value, &a.sparql)),
                single.answer.as_ref().map(|a| (&a.value, &a.sparql)),
                "{question}"
            );
        }
        // Degenerate thread counts are fine.
        assert_eq!(p.answer_batch_with(&questions[..1], 16).len(), 1);
        assert!(p.answer_batch_with(&[], 4).is_empty());
        assert_eq!(p.answer_batch(&questions).len(), questions.len());
    }

    #[test]
    fn explained_answer_carries_plan_traces() {
        let p = pipeline();
        let plain = p.answer("Which book is written by Orhan Pamuk?");
        assert!(plain.trace.plans.is_empty(), "plain answers collect no plans");

        let r = p.answer_explained("Which book is written by Orhan Pamuk?");
        assert!(r.is_answered(), "stage {:?}", r.stage);
        assert_eq!(plain.answer.as_ref().map(|a| &a.value), r.answer.as_ref().map(|a| &a.value));
        assert_eq!(r.trace.plans.len() as u64, r.trace.queries_executed - r.trace.queries_failed);
        // Every executed query was answered from the warm cache or ran real
        // join steps whose scan totals the trace can sum.
        for plan in &r.trace.plans {
            assert!(plan.trace.cache_hit || !plan.trace.steps.is_empty(), "{plan:?}");
        }
        let rendered = r.explain(p.kb());
        assert!(rendered.contains("Query plans (EXPLAIN ANALYZE):"), "{rendered}");
        assert!(r.trace.to_json().to_string().contains("\"plans\""));
    }

    #[test]
    fn response_records_queries_and_provenance() {
        let r = pipeline().answer("Which book is written by Orhan Pamuk?");
        assert!(!r.queries.is_empty());
        assert!(r.answer.as_ref().unwrap().score > 0.0);
        assert!(r.answer.as_ref().unwrap().sparql.contains("author"));
        assert!(r.analysis.is_some());
    }
}
