//! # relpat — Semantic Question Answering over Linked Data using Relational Patterns
//!
//! A from-scratch Rust reproduction of Hakimov, Tunc, Akimaliev & Dogdu
//! (EDBT/ICDT 2013 workshops): a pipeline that translates natural-language
//! questions into SPARQL queries over a DBpedia-style knowledge base using
//! the question's dependency graph, string similarity, WordNet-derived
//! property lists and PATTY-style relational patterns.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`rdf`] | `relpat-rdf` | RDF model + indexed triple store |
//! | [`sparql`] | `relpat-sparql` | SPARQL subset engine |
//! | [`nlp`] | `relpat-nlp` | tokenizer, POS tagger, dependency parser |
//! | [`wordnet`] | `relpat-wordnet` | mini WordNet with Lin / Wu–Palmer |
//! | [`patterns`] | `relpat-patterns` | PATTY-style pattern mining |
//! | [`kb`] | `relpat-kb` | synthetic DBpedia + QALD benchmark |
//! | [`qa`] | `relpat-qa` | the paper's QA pipeline |
//! | [`eval`] | `relpat-eval` | Table-2 metrics, runner, ablations |
//! | [`obs`] | `relpat-obs` | tracing, metrics, per-question traces |
//!
//! ## Quickstart
//!
//! ```no_run
//! use relpat::kb::{generate, KbConfig};
//! use relpat::qa::Pipeline;
//!
//! let kb = generate(&KbConfig::default());
//! let qa = Pipeline::new(&kb);
//! let response = qa.answer("Which book is written by Orhan Pamuk?");
//! println!("{:?}", response.answer);
//! ```

pub use relpat_eval as eval;
pub use relpat_kb as kb;
pub use relpat_nlp as nlp;
pub use relpat_obs as obs;
pub use relpat_patterns as patterns;
pub use relpat_qa as qa;
pub use relpat_rdf as rdf;
pub use relpat_sparql as sparql;
pub use relpat_wordnet as wordnet;
