//! Explore the synthetic DBpedia: ontology, entities, facts, raw SPARQL.
//!
//! ```sh
//! cargo run --release --example explore_kb
//! cargo run --release --example explore_kb -- "SELECT ?x { ?x rdf:type dbont:Country } LIMIT 5"
//! ```

use relpat::kb::{generate, KbConfig};
use relpat::rdf::{to_turtle, Graph, Term};
use relpat::sparql::QueryResult;

fn main() {
    let kb = generate(&KbConfig::default());

    // Ad-hoc query mode: pass a SPARQL string as the first argument.
    if let Some(query) = std::env::args().nth(1) {
        match kb.query(&query) {
            Ok(QueryResult::Solutions(sols)) => print!("{}", sols.to_table()),
            Ok(QueryResult::Boolean(b)) => println!("{b}"),
            Err(e) => eprintln!("error: {e}"),
        }
        return;
    }

    println!("=== Synthetic DBpedia overview ===\n");
    let stats = relpat::kb::KbStats::compute(&kb);
    println!("{}", stats.summary());

    println!("Ontology: {} classes, {} object properties, {} data properties",
        kb.ontology.classes.len(),
        kb.ontology.object_properties.len(),
        kb.ontology.data_properties.len());

    println!("\nInstances per top-level class (taxonomy-aware):");
    for class in ["Person", "Place", "Work", "Organisation"] {
        let count = relpat::kb::KbStats::instances_under(&kb, class);
        println!("  {class:<14} {count}");
    }

    println!("\nEverything about Orhan Pamuk (Turtle):");
    let pamuk = Term::iri(relpat::rdf::vocab::res::iri("Orhan Pamuk"));
    let mut subgraph = Graph::new();
    for t in kb.graph.triples_matching(Some(&pamuk), None, None) {
        subgraph.insert(&t);
    }
    for t in kb.graph.triples_matching(None, None, Some(&pamuk)) {
        if !t.predicate.as_iri().is_some_and(|i| i.as_str().contains("wikiPageWikiLink")) {
            subgraph.insert(&t);
        }
    }
    println!("{}", to_turtle(&subgraph));

    println!("Sample SPARQL — the paper's Query2:");
    let sols = kb
        .query("SELECT ?x WHERE { ?x rdf:type dbont:Book . ?x dbont:author res:Orhan_Pamuk . }")
        .unwrap()
        .into_solutions().unwrap();
    print!("{}", sols.to_table());

    println!("\nAmbiguous labels (disambiguation test cases):");
    for label in ["Michael Jordan", "Springfield"] {
        let entities = kb.entities_with_label(label);
        println!("  \"{label}\" → {} readings:", entities.len());
        for iri in entities {
            println!(
                "     {} (classes: {}, page degree {})",
                iri.as_str(),
                kb.classes_of(iri).join(", "),
                kb.page_degree(iri)
            );
        }
    }
}
