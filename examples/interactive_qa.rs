//! Interactive question answering session.
//!
//! Questions come from the command line or stdin (one per line):
//!
//! ```sh
//! cargo run --release --example interactive_qa -- "Who directed Titanic?"
//! echo "How tall is Michael Jordan?" | cargo run --release --example interactive_qa
//! ```
//!
//! With `--trace`, every pipeline stage is printed: the dependency parse
//! (paper Figure 1), the triple bucket (§2.1), candidate queries (§2.3) and
//! the winning query.

use std::io::BufRead;

use relpat::kb::{generate, KbConfig, KnowledgeBase};
use relpat::nlp::parse_sentence;
use relpat::qa::{AnswerValue, Pipeline, Response};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace = args.iter().any(|a| a == "--trace");
    let questions: Vec<String> = args.into_iter().filter(|a| a != "--trace").collect();

    eprintln!("Loading knowledge base and mining patterns…");
    let kb = generate(&KbConfig::default());
    let qa = Pipeline::new(&kb);
    eprintln!("Ready.\n");

    if questions.is_empty() {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            let line = line.trim();
            if line.is_empty() || line == "quit" || line == "exit" {
                continue;
            }
            answer_one(&kb, &qa, line, trace);
        }
    } else {
        for q in &questions {
            answer_one(&kb, &qa, q, trace);
        }
    }
}

fn answer_one(kb: &KnowledgeBase, qa: &Pipeline<'_>, question: &str, trace: bool) {
    let response = qa.answer(question);
    if trace {
        let graph = parse_sentence(question);
        println!("Dependency graph:");
        print!("{}", graph.to_tree_string());
        // The full §2 walkthrough for this question.
        println!("{}", response.explain(kb));
    } else {
        println!("Q: {question}");
        print_answer(kb, &response);
    }
    println!();
}

fn print_answer(kb: &KnowledgeBase, response: &Response) {
    match &response.answer {
        Some(ans) => match &ans.value {
            AnswerValue::Terms(terms) => {
                let rendered: Vec<String> = terms
                    .iter()
                    .map(|t| {
                        t.as_iri()
                            .and_then(|i| kb.label_of(i))
                            .map(str::to_string)
                            .unwrap_or_else(|| {
                                t.as_literal()
                                    .map(|l| l.lexical_form().to_string())
                                    .unwrap_or_else(|| t.to_string())
                            })
                    })
                    .collect();
                println!("A: {}", rendered.join(", "));
            }
            AnswerValue::Boolean(b) => println!("A: {}", if *b { "yes" } else { "no" }),
        },
        None => println!("A: (no answer — {:?})", response.stage),
    }
}
