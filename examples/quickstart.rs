//! Quickstart: build the knowledge base, mine patterns, ask one question.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use relpat::kb::{generate, KbConfig};
use relpat::qa::{AnswerValue, Pipeline};

fn main() {
    // 1. A deterministic DBpedia-style knowledge base (≈10k triples).
    println!("Generating knowledge base…");
    let kb = generate(&KbConfig::default());
    println!("  {} triples, {} entities\n", kb.len(), kb.entity_count());

    // 2. The pipeline: mines relational patterns from a synthesized corpus
    //    and precomputes the WordNet similar-property list.
    println!("Building QA pipeline (mining relational patterns)…");
    let qa = Pipeline::new(&kb);
    println!("  {} distinct patterns mined\n", qa.patterns().pattern_count());

    // 3. Ask the paper's running example.
    let question = "Which book is written by Orhan Pamuk?";
    println!("Q: {question}");
    let response = qa.answer(question);

    // What the pipeline did, step by step:
    if let Some(analysis) = &response.analysis {
        println!("\nTriple bucket (§2.1):");
        print!("{}", analysis.to_bucket_string());
    }
    println!("\nTop candidate queries (§2.3):");
    for q in response.queries.iter().take(3) {
        println!("  [{:>7.1}] {}", q.score, q.sparql);
    }

    match &response.answer {
        Some(ans) => {
            println!("\nA: (from {})", ans.sparql);
            match &ans.value {
                AnswerValue::Terms(terms) => {
                    for t in terms {
                        let text = t
                            .as_iri()
                            .and_then(|i| kb.label_of(i))
                            .map(str::to_string)
                            .unwrap_or_else(|| t.to_string());
                        println!("   • {text}");
                    }
                }
                AnswerValue::Boolean(b) => println!("   • {b}"),
            }
        }
        None => println!("\nA: no answer (stage {:?})", response.stage),
    }
}
