//! Inspect the PATTY-style relational pattern mining pipeline: the
//! synthesized corpus, mined patterns with per-property frequencies (and the
//! paper's noise artifact), and the support-set subsumption taxonomy.
//!
//! ```sh
//! cargo run --release --example pattern_mining
//! cargo run --release --example pattern_mining -- die     # word lookup
//! ```

use relpat::kb::{generate, KbConfig};
use relpat::patterns::{generate_corpus, mine, CorpusConfig};

fn main() {
    let kb = generate(&KbConfig::default());
    let config = CorpusConfig::default();

    // Word-lookup mode.
    if let Some(word) = std::env::args().nth(1) {
        let mined = mine(&kb, &config);
        println!("Property candidates for the word \"{word}\":");
        for c in mined.store.candidates_for_word(&word) {
            println!(
                "  dbont:{:<18} freq {:>5}   direction: {}",
                c.property,
                c.freq,
                if c.inverse { "inverse" } else { "forward" }
            );
        }
        return;
    }

    println!("=== PATTY-style relational pattern mining ===\n");
    let corpus = generate_corpus(&kb, &config);
    println!("Corpus: {} sentences. Samples:", corpus.len());
    for s in corpus.iter().step_by(corpus.len() / 8).take(8) {
        println!("  {}", s.text);
    }

    let mined = mine(&kb, &config);
    println!(
        "\nMined {} occurrences → {} distinct normalized patterns\n",
        mined.occurrences,
        mined.store.pattern_count()
    );

    println!("The paper's §2.2.3 example — candidates for \"die\":");
    for c in mined.store.candidates_for_word("die") {
        println!("  dbont:{:<14} freq {:>5}", c.property, c.freq);
    }
    println!("\n…and the PATTY noise the paper criticizes — \"bear\" (born):");
    for c in mined.store.candidates_for_word("bear") {
        println!("  dbont:{:<14} freq {:>5}", c.property, c.freq);
    }

    println!("\nSynonym sets (mutual support-set inclusion, min overlap 0.75):");
    let mut sets = mined.tree.synonym_sets(0.75);
    sets.retain(|s| s.len() > 1);
    sets.sort();
    for set in sets.iter().take(12) {
        println!("  {{ {} }}", set.join(" ≡ "));
    }

    println!("\nTaxonomy edges (specific ⊑ general), sample:");
    let edges = mined.tree.taxonomy_edges(0.9);
    for (child, parent) in edges.iter().take(12) {
        println!("  \"{child}\" ⊑ \"{parent}\"");
    }
    println!("\n({} taxonomy edges total)", edges.len());
}
