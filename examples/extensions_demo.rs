//! The extended system: the paper's §5/§6 future work in action.
//!
//! Runs the same questions through the faithful paper configuration and the
//! extended configuration side by side, showing exactly what each extension
//! buys (existence checks, superlatives, counts, data-property patterns).
//!
//! ```sh
//! cargo run --release --example extensions_demo
//! ```

use relpat::kb::{generate, KbConfig};
use relpat::qa::{Pipeline, Stage};

fn main() {
    println!("Building knowledge base and both pipelines…\n");
    let kb = generate(&KbConfig::default());
    let paper = Pipeline::new(&kb);
    let extended = Pipeline::extended(&kb);

    let showcase: &[(&str, &str)] = &[
        (
            "Is Frank Herbert still alive?",
            "the paper's own §5 failure: 'alive' maps to no property; the \
             extension compiles it to a deathDate existence check",
        ),
        (
            "What is the highest mountain?",
            "superlative: ORDER BY DESC(elevation) LIMIT 1 via the \
             adjective→attribute map (high → height ≈ elevation)",
        ),
        (
            "What is the longest river?",
            "superlative over dbont:length",
        ),
        (
            "How many books did Orhan Pamuk write?",
            "count question compiled to SPARQL COUNT (engine extension)",
        ),
        (
            "How many employees does Vertex Systems have?",
            "count noun resolved to the numeric data property numberOfEmployees",
        ),
        (
            "How many people live in Turkey?",
            "data-property relational pattern ('$v person live in' → \
             populationTotal) — the §5 research gap",
        ),
    ];

    for (question, why) in showcase {
        println!("Q: {question}");
        println!("   ({why})");
        let before = paper.answer(question);
        let after = extended.answer(question);
        println!(
            "   paper system:    {}",
            match before.stage {
                Stage::Answered => before.answer_texts(&kb).join(", "),
                stage => format!("no answer ({stage:?})"),
            }
        );
        println!(
            "   extended system: {}",
            match after.stage {
                Stage::Answered => after.answer_texts(&kb).join(", "),
                stage => format!("no answer ({stage:?})"),
            }
        );
        if let Some(ans) = &after.answer {
            println!("   via {}", ans.sparql);
        }
        println!();
    }

    println!("A question neither system should attempt (sanity check):");
    let q = "Which films starring James Cameron were released after 2000?";
    let r = extended.answer(q);
    println!("Q: {q}\n   extended system: {:?}\n", r.stage);
}
