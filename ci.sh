#!/usr/bin/env bash
# Repository CI gate: release build, full test suite, and lint-clean clippy
# across every target (libs, bins, tests, benches). The workspace has zero
# external dependencies, so this runs fully offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "=== cargo build --release --workspace ==="
# --workspace matters: the root package is the `relpat` facade, and a bare
# `cargo build` would skip the serve/bench release binaries entirely,
# leaving stale executables in target/release/.
cargo build --release --workspace

echo "=== cargo test -q (workspace) ==="
cargo test -q --workspace

echo "=== cargo clippy --all-targets -- -D warnings ==="
cargo clippy --all-targets --workspace -- -D warnings

echo "=== parallel-eval determinism gate ==="
cargo test -q -p relpat-eval parallel_report_matches_sequential

echo "=== lexical index equivalence gate ==="
cargo test -q -p relpat-qa --test lexical_equivalence

echo "=== frozen-index equivalence gate ==="
cargo test -q -p relpat-rdf --test index_equivalence

echo "=== planning equivalence gate (beam == exact top-k, Table-2 budget) ==="
cargo test -q -p relpat-eval --test planning_equivalence

echo "=== streaming LIMIT pushdown gate ==="
cargo test -q -p relpat-sparql --test streaming

echo "=== explain-plan golden + allocation overhead gate ==="
cargo test -q -p relpat-sparql --test explain

echo "=== join equivalence gate (merge/gallop vs nested oracle) ==="
cargo test -q -p relpat-sparql --test join_equivalence

echo "=== prometheus exposition audit gate (incl. slo_* / prof_* families) ==="
cargo test -q -p relpat-obs every_exposition_family_has_help_and_type
cargo test -q -p relpat-obs slo_and_prof_families_render_with_metadata

echo "=== profiler equivalence gate (Table-2 bit-identical, sampler on vs off) ==="
cargo test -q -p relpat-eval --test profiler_equivalence

echo "=== profiler span-scope audit gate (push/pop order == trace stages) ==="
cargo test -q -p relpat-qa --test span_scopes

echo "=== profiler hot-path allocation gate ==="
cargo test -q -p relpat-obs --test prof_alloc

echo "=== SLO burn-rate unit sweep ==="
cargo test -q -p relpat-obs slo::

echo "=== flight-recorder concurrency hammer gate ==="
cargo test -q -p relpat-obs --test concurrency

echo "=== serve loopback smoke gate ==="
cargo test -q -p relpat-serve --test loopback

echo "=== batch throughput smoke ==="
cargo bench -p relpat-bench --bench qa_batch_throughput -- --smoke

echo "=== mapping throughput smoke ==="
cargo bench -p relpat-bench --bench qa_mapping_throughput -- --smoke

echo "=== planning throughput smoke ==="
cargo bench -p relpat-bench --bench qa_planning_throughput -- --smoke

echo "=== observability overhead smoke ==="
cargo bench -p relpat-bench --bench obs_overhead -- --smoke

echo "=== store scaling smoke (paper + 100k tiers) ==="
cargo bench -p relpat-bench --bench store_scaling -- --smoke

echo "=== bench-diff regression sentinel self-test ==="
cargo run --release -q -p relpat-bench --bin bench-diff -- --smoke BENCH_store_scaling.json

echo "CI OK"
