//! End-to-end tests for the extended system (§5/§6 future work) and its
//! interaction with the faithful paper configuration.

use relpat::eval::run_benchmark;
use relpat::kb::{generate, qald_questions, KbConfig, KnowledgeBase};
use relpat::qa::{AnswerValue, Pipeline, Stage};
use std::sync::OnceLock;

fn kb() -> &'static KnowledgeBase {
    static KB: OnceLock<KnowledgeBase> = OnceLock::new();
    KB.get_or_init(|| generate(&KbConfig::tiny()))
}

fn paper() -> &'static Pipeline<'static> {
    static P: OnceLock<Pipeline<'static>> = OnceLock::new();
    P.get_or_init(|| Pipeline::new(kb()))
}

fn extended() -> &'static Pipeline<'static> {
    static P: OnceLock<Pipeline<'static>> = OnceLock::new();
    P.get_or_init(|| Pipeline::extended(kb()))
}

#[test]
fn extended_dominates_paper_on_the_benchmark() {
    let questions = qald_questions(kb());
    let base = run_benchmark(paper(), &questions);
    let ext = run_benchmark(extended(), &questions);
    assert!(
        ext.counts.answered > base.counts.answered,
        "extensions must add coverage: {} vs {}",
        ext.counts.answered,
        base.counts.answered
    );
    assert!(ext.counts.correct > base.counts.correct);
    // And they must not break anything the paper system got right.
    for (b, e) in base.results.iter().zip(ext.results.iter()) {
        assert_eq!(b.id, e.id);
        if b.correct {
            assert!(e.correct, "extension regressed q{} ({})", b.id, b.text);
        }
    }
}

#[test]
fn paper_config_is_unaffected_by_extension_existence() {
    // The default pipeline must behave as if the extension code didn't
    // exist: same stages on the signature questions.
    let r = paper().answer("Is Frank Herbert still alive?");
    assert_eq!(r.stage, Stage::MappingFailed);
    let r = paper().answer("What is the highest mountain?");
    assert_eq!(r.stage, Stage::ExtractionFailed);
    let r = paper().answer("How many books did Orhan Pamuk write?");
    assert_ne!(r.stage, Stage::Answered);
}

#[test]
fn existence_answers_are_consistent_with_kb_facts() {
    let kb = kb();
    // For every writer with/without a death date, the alive answer must
    // invert the deathDate fact.
    for (label, alive) in [("Frank Herbert", false), ("Orhan Pamuk", true)] {
        let r = extended().answer(&format!("Is {label} still alive?"));
        assert_eq!(r.stage, Stage::Answered, "{label}");
        let expected = AnswerValue::Boolean(alive);
        assert_eq!(r.answer.as_ref().unwrap().value, expected, "{label}");
        // Cross-check against the raw fact.
        let iri = &kb.entities_with_label(label)[0];
        let has_death = !kb
            .graph
            .objects_of(
                &relpat::rdf::Term::Iri(iri.clone()),
                &relpat::rdf::Term::iri(relpat::rdf::vocab::dbont::iri("deathDate")),
            )
            .is_empty();
        assert_eq!(has_death, !alive);
    }
}

#[test]
fn superlatives_agree_with_direct_queries() {
    let kb = kb();
    for (question, gold_query) in [
        (
            "What is the highest mountain?",
            "SELECT ?m { ?m rdf:type dbont:Mountain . ?m dbont:elevation ?e } ORDER BY DESC(?e) LIMIT 1",
        ),
        (
            "What is the longest river?",
            "SELECT ?r { ?r rdf:type dbont:River . ?r dbont:length ?l } ORDER BY DESC(?l) LIMIT 1",
        ),
        (
            "What is the deepest lake?",
            "SELECT ?l { ?l rdf:type dbont:Lake . ?l dbont:depth ?d } ORDER BY DESC(?d) LIMIT 1",
        ),
    ] {
        let r = extended().answer(question);
        assert_eq!(r.stage, Stage::Answered, "{question}");
        let gold = kb.query(gold_query).unwrap().into_solutions().unwrap();
        let gold_iri = gold.first().unwrap().as_iri().unwrap().clone();
        match &r.answer.as_ref().unwrap().value {
            AnswerValue::Terms(ts) => {
                assert_eq!(ts[0].as_iri(), Some(&gold_iri), "{question}");
            }
            other => panic!("{question}: unexpected {other:?}"),
        }
    }
}

#[test]
fn count_answers_match_gold_counts() {
    let kb = kb();
    let r = extended().answer("How many books did Orhan Pamuk write?");
    let gold = kb
        .query("SELECT (COUNT(?x) AS ?c) { ?x rdf:type dbont:Book . ?x dbont:author res:Orhan_Pamuk }")
        .unwrap()
        .into_solutions().unwrap();
    let gold_count = gold.first().unwrap().as_literal().unwrap().as_i64().unwrap();
    match &r.answer.as_ref().unwrap().value {
        AnswerValue::Terms(ts) => {
            assert_eq!(ts[0].as_literal().unwrap().as_i64(), Some(gold_count));
        }
        other => panic!("unexpected {other:?}"),
    }
}
