//! Benchmark-level integration: Table-2 shape and ablation ordering on the
//! fast (tiny) configuration. The full-scale numbers live in
//! `repro-table2`/`repro-ablations` and EXPERIMENTS.md.

use relpat::eval::{run_benchmark, run_selected, Ablation};
use relpat::kb::{evaluated_subset, generate, qald_questions, KbConfig, KnowledgeBase};
use relpat::qa::{MappingConfig, Pipeline, PipelineConfig};
use std::sync::OnceLock;

fn kb() -> &'static KnowledgeBase {
    static KB: OnceLock<KnowledgeBase> = OnceLock::new();
    KB.get_or_init(|| generate(&KbConfig::tiny()))
}

#[test]
fn benchmark_partitions_100_into_55_and_45() {
    let questions = qald_questions(kb());
    assert_eq!(questions.len(), 100);
    assert_eq!(evaluated_subset(&questions).len(), 55);
}

#[test]
fn table2_shape_holds_on_tiny_kb() {
    let pipeline = Pipeline::new(kb());
    let report = run_benchmark(&pipeline, &qald_questions(kb()));
    let c = &report.counts;
    // Paper: P 83 %, R 32 %, F1 46 %. The shape must hold at any KB scale:
    // high precision, low-to-moderate recall, precision strictly dominant.
    assert!(c.precision() >= 0.70, "precision {:.2}", c.precision());
    assert!((0.20..=0.55).contains(&c.recall()), "recall {:.2}", c.recall());
    assert!(c.precision() > c.recall());
    assert!(c.f1() > c.recall() && c.f1() < c.precision());
}

#[test]
fn per_question_judgements_are_consistent() {
    let pipeline = Pipeline::new(kb());
    let report = run_benchmark(&pipeline, &qald_questions(kb()));
    for r in &report.results {
        if r.correct {
            assert!(r.answered, "q{} correct but not answered", r.id);
            assert!(!r.answer.is_empty());
            assert!(r.query.is_some());
        }
        if !r.answered {
            assert!(r.answer.is_empty());
            assert_ne!(r.stage, "Answered");
        }
    }
}

#[test]
fn patterns_ablation_costs_recall_not_precision_shape() {
    let kb = kb();
    let questions = qald_questions(kb);
    let suite: Vec<Ablation> = relpat::eval::ablation_suite()
        .into_iter()
        .filter(|a| matches!(a.name, "full" | "A1-no-patterns" | "A2-no-wordnet"))
        .collect();
    let results = run_selected(kb, &questions, &suite);
    let full = results.iter().find(|r| r.name == "full").unwrap();
    let no_pat = results.iter().find(|r| r.name == "A1-no-patterns").unwrap();
    let no_wn = results.iter().find(|r| r.name == "A2-no-wordnet").unwrap();

    assert!(no_pat.counts.answered < full.counts.answered,
        "patterns must contribute coverage: {} vs {}", no_pat.counts.answered, full.counts.answered);
    assert!(no_wn.counts.answered <= full.counts.answered);
}

#[test]
fn threshold_sweep_is_monotone_in_coverage() {
    // A higher string-similarity threshold can only shrink the candidate
    // sets, so answered-question counts must be non-increasing.
    let kb = kb();
    let questions = qald_questions(kb);
    let mut suite = Vec::new();
    for (name, t) in [("lo", 0.5), ("mid", 0.7), ("hi", 0.95)] {
        suite.push(Ablation {
            name: if name == "lo" { "lo" } else if name == "mid" { "mid" } else { "hi" },
            description: "sweep",
            config: PipelineConfig {
                mapping: MappingConfig { string_sim_threshold: t, ..MappingConfig::default() },
                ..PipelineConfig::standard()
            },
        });
    }
    let results = run_selected(kb, &questions, &suite);
    assert!(results[0].counts.answered >= results[1].counts.answered);
    assert!(results[1].counts.answered >= results[2].counts.answered);
}

#[test]
fn baselines_cover_less_than_pipeline() {
    let kb = kb();
    let questions = qald_questions(kb);
    let evaluated = evaluated_subset(&questions);
    let pipeline = Pipeline::new(kb);
    let report = run_benchmark(&pipeline, &questions);

    let template = relpat::qa::TemplateBaseline::new(kb);
    let template_answered =
        evaluated.iter().filter(|q| template.answer(&q.text).is_some()).count();
    assert!(
        template_answered < report.counts.answered,
        "template baseline ({template_answered}) should trail the pipeline ({})",
        report.counts.answered
    );
}
