//! Randomized invariant tests over the core data structures: triple-store
//! index coherence, SPARQL-vs-naive-scan agreement, Turtle round-trips, LCS
//! metric properties, tokenizer and lemmatizer stability, and
//! similarity-metric bounds.
//!
//! Formerly proptest-based; now driven by the in-tree deterministic PRNG
//! (`relpat::obs::Rng`) so the workspace carries no external dependencies.
//! Each test sweeps a fixed number of seeded cases — failures are perfectly
//! reproducible because every input derives from the case index.

use relpat::nlp::{lemmatize, tokenize, PosTag};
use relpat::obs::Rng;
use relpat::qa::{lcs_len, lcs_score};
use relpat::rdf::{load_turtle, to_turtle, Graph, Literal, Term, Triple};
use relpat::sparql::query;
use relpat::wordnet::{embedded, WnPos};

const CASES: u64 = 64;

// ---------------------------------------------------------------- generators

fn arb_lower_word(rng: &mut Rng, min: usize, max: usize) -> String {
    let len = rng.gen_range(min..=max);
    (0..len).map(|_| (b'a' + rng.gen_range(0u32..26) as u8) as char).collect()
}

fn arb_string(rng: &mut Rng, alphabet: &[u8], min: usize, max: usize) -> String {
    let len = rng.gen_range(min..=max);
    (0..len).map(|_| alphabet[rng.gen_range(0usize..alphabet.len())] as char).collect()
}

fn arb_iri(rng: &mut Rng) -> Term {
    Term::iri(format!("http://example.org/{}", arb_lower_word(rng, 1, 6)))
}

fn arb_literal(rng: &mut Rng) -> Term {
    match rng.gen_range(0u32..3) {
        0 => Term::literal(arb_string(
            rng,
            b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ",
            0,
            12,
        )),
        1 => Term::Literal(Literal::integer(rng.gen_range(-1_000_000i64..1_000_000))),
        _ => Term::Literal(Literal::date(
            rng.gen_range(1900i32..2100),
            rng.gen_range(1u32..13),
            rng.gen_range(1u32..29),
        )),
    }
}

fn arb_triple(rng: &mut Rng) -> Triple {
    let object = if rng.gen_bool(0.5) { arb_iri(rng) } else { arb_literal(rng) };
    Triple::new(arb_iri(rng), arb_iri(rng), object)
}

fn arb_triples(rng: &mut Rng, min: usize, max: usize) -> Vec<Triple> {
    let n = rng.gen_range(min..=max);
    (0..n).map(|_| arb_triple(rng)).collect()
}

/// Runs `body` for `CASES` seeded cases, each with its own derived generator.
fn sweep(test_tag: u64, body: impl Fn(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(test_tag.wrapping_mul(0x9E37_79B9) + case);
        body(&mut rng);
    }
}

// ------------------------------------------------------------------ rdf store

#[test]
fn store_membership_matches_inserted_set() {
    sweep(1, |rng| {
        let triples = arb_triples(rng, 0, 40);
        let mut g = Graph::new();
        for t in &triples {
            g.insert(t);
        }
        // Set semantics: length equals the number of distinct triples.
        let mut distinct = triples.clone();
        distinct.sort();
        distinct.dedup();
        assert_eq!(g.len(), distinct.len());
        for t in &distinct {
            assert!(g.contains(t));
        }
        // Full iteration returns exactly the distinct set.
        let mut iterated: Vec<Triple> = g.iter().collect();
        iterated.sort();
        assert_eq!(iterated, distinct);
    });
}

#[test]
fn store_pattern_scans_agree_with_naive_filter() {
    sweep(2, |rng| {
        let triples = arb_triples(rng, 1, 30);
        let probe_idx = rng.gen_range(0usize..triples.len());
        let mut g = Graph::new();
        for t in &triples {
            g.insert(t);
        }
        let probe = &triples[probe_idx];
        let all: Vec<Triple> = g.iter().collect();

        // Every one of the 8 bound/unbound shapes must equal a naive filter.
        for mask in 0..8u8 {
            let s = (mask & 1 != 0).then_some(&probe.subject);
            let p = (mask & 2 != 0).then_some(&probe.predicate);
            let o = (mask & 4 != 0).then_some(&probe.object);
            let mut expected: Vec<Triple> = all
                .iter()
                .filter(|t| {
                    s.is_none_or(|x| &t.subject == x)
                        && p.is_none_or(|x| &t.predicate == x)
                        && o.is_none_or(|x| &t.object == x)
                })
                .cloned()
                .collect();
            expected.sort();
            let mut got = g.triples_matching(s, p, o);
            got.sort();
            assert_eq!(got, expected, "mask {mask}");
        }
    });
}

#[test]
fn store_remove_is_inverse_of_insert() {
    sweep(3, |rng| {
        let triples = arb_triples(rng, 1, 25);
        let mut g = Graph::new();
        for t in &triples {
            g.insert(t);
        }
        for t in &triples {
            g.remove(t);
        }
        assert!(g.is_empty());
        assert!(g.triples_matching(None, None, None).is_empty());
    });
}

// ------------------------------------------------------------------ sparql

#[test]
fn sparql_spo_query_agrees_with_store() {
    sweep(4, |rng| {
        let triples = arb_triples(rng, 1, 25);
        let mut g = Graph::new();
        for t in &triples {
            g.insert(t);
        }
        let sols = query(&g, "SELECT ?s ?p ?o { ?s ?p ?o }").unwrap().into_solutions().unwrap();
        assert_eq!(sols.len(), g.len());
        // A bound-subject query returns exactly that subject's triples.
        let subject = &triples[0].subject;
        let q = format!("SELECT ?p ?o {{ <{}> ?p ?o }}", subject.as_iri().unwrap().as_str());
        let bound = query(&g, &q).unwrap().into_solutions().unwrap();
        assert_eq!(bound.len(), g.triples_matching(Some(subject), None, None).len());
    });
}

#[test]
fn sparql_limit_caps_results() {
    sweep(5, |rng| {
        let triples = arb_triples(rng, 1, 25);
        let limit = rng.gen_range(0usize..10);
        let mut g = Graph::new();
        for t in &triples {
            g.insert(t);
        }
        let sols = query(&g, &format!("SELECT ?s {{ ?s ?p ?o }} LIMIT {limit}"))
            .unwrap()
            .into_solutions().unwrap();
        assert!(sols.len() <= limit);
        assert_eq!(sols.len(), limit.min(g.len()));
    });
}

// ------------------------------------------------------------------ turtle

#[test]
fn turtle_round_trip_preserves_graph() {
    sweep(6, |rng| {
        let triples = arb_triples(rng, 0, 25);
        let mut g = Graph::new();
        for t in &triples {
            g.insert(t);
        }
        let ttl = to_turtle(&g);
        let mut g2 = Graph::new();
        load_turtle(&mut g2, &ttl).unwrap();
        assert_eq!(g.len(), g2.len());
        for t in g.iter() {
            assert!(g2.contains(&t), "lost {t}");
        }
    });
}

// ------------------------------------------------------------- similarity

#[test]
fn lcs_is_symmetric_and_bounded() {
    let alpha = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    sweep(7, |rng| {
        let a = arb_string(rng, alpha, 0, 14);
        let b = arb_string(rng, alpha, 0, 14);
        let ab = lcs_score(&a, &b);
        let ba = lcs_score(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&ab));
        assert!(lcs_len(&a, &b) <= a.len().min(b.len()));
    });
}

#[test]
fn lcs_identity_scores_one() {
    sweep(8, |rng| {
        let a = arb_lower_word(rng, 1, 14);
        assert_eq!(lcs_score(&a, &a), 1.0);
        assert_eq!(lcs_len(&a, &a), a.len());
    });
}

#[test]
fn lcs_monotone_under_concatenation() {
    sweep(9, |rng| {
        let a = arb_lower_word(rng, 1, 8);
        let b = arb_lower_word(rng, 1, 8);
        // A common subsequence can only grow when one side gains characters.
        let base = lcs_len(&a, &b);
        let extended = lcs_len(&a, &format!("{b}{a}"));
        assert!(extended >= base);
        assert!(extended >= a.len()); // a is a subsequence of b+a
    });
}

// ---------------------------------------------------------------- parser

/// The SPARQL parser must be total: random input either parses or returns
/// an error, never panics — and parsed queries re-render and re-parse to
/// the same AST (serializer round trip).
#[test]
fn sparql_parser_total_and_round_trips() {
    sweep(10, |rng| {
        let s = arb_string(
            rng,
            b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789?{}<>.:/ \"=",
            0,
            80,
        );
        if let Ok(q) = relpat::sparql::parse_query(&s) {
            let rendered = q.to_string();
            let reparsed = relpat::sparql::parse_query(&rendered)
                .unwrap_or_else(|e| panic!("reparse of {rendered:?} failed: {e}"));
            assert_eq!(q, reparsed);
        }
    });
    // Regression inputs that previously tripped the parser (from the old
    // proptest regression corpus): well-formed-looking fragments.
    for s in ["SELECT ?s { ?s ?p ?o }", "ASK { <a:b> <a:c> \"x\" }", "SELECT {", "?"] {
        let _ = relpat::sparql::parse_query(s);
    }
}

/// Turtle parser totality on arbitrary input.
#[test]
fn turtle_parser_total() {
    sweep(11, |rng| {
        let s = arb_string(
            rng,
            b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789@<>.;, \"",
            0,
            80,
        );
        let _ = relpat::rdf::parse_turtle(&s); // must not panic
    });
}

// ----------------------------------------------------------------- nlp

#[test]
fn tokenizer_never_loses_alphanumerics() {
    sweep(12, |rng| {
        let s = arb_string(
            rng,
            b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ,.?!'",
            0,
            60,
        );
        let tokens = tokenize(&s);
        let kept: String = tokens.join("").chars().filter(|c| c.is_alphanumeric()).collect();
        let original: String = s.chars().filter(|c| c.is_alphanumeric()).collect();
        assert_eq!(kept, original);
    });
}

#[test]
fn lemmatizer_is_idempotent_for_nouns() {
    sweep(13, |rng| {
        let w = arb_lower_word(rng, 2, 12);
        let once = lemmatize(&w, PosTag::Nn);
        let twice = lemmatize(&once, PosTag::Nn);
        assert_eq!(once, twice);
    });
}

#[test]
fn lemmas_are_lowercase_and_nonempty() {
    let alpha = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    sweep(14, |rng| {
        let w = arb_string(rng, alpha, 1, 12);
        for pos in [PosTag::Nn, PosTag::Nns, PosTag::Vb, PosTag::Vbd, PosTag::Jj, PosTag::In] {
            let lemma = lemmatize(&w, pos);
            assert!(!lemma.is_empty());
            assert_eq!(lemma.clone(), lemma.to_lowercase());
        }
    });
}

// --------------------------------------------------------------- wordnet

#[test]
fn wordnet_metrics_bounded_and_reflexive() {
    let words = ["writer", "author", "city", "person", "height", "book", "film", "place"];
    let wn = embedded();
    for w in words {
        assert_eq!(wn.lin(w, w, WnPos::Noun), Some(1.0));
        assert_eq!(wn.wup(w, w, WnPos::Noun), Some(1.0));
        for other in words {
            if let (Some(lin), Some(wup)) =
                (wn.lin(w, other, WnPos::Noun), wn.wup(w, other, WnPos::Noun))
            {
                assert!((0.0..=1.0).contains(&lin));
                assert!((0.0..=1.0).contains(&wup));
                // Symmetry.
                assert_eq!(wn.lin(other, w, WnPos::Noun), Some(lin));
                assert_eq!(wn.wup(other, w, WnPos::Noun), Some(wup));
            }
        }
    }
}
