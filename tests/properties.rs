//! Property-based tests (proptest) over the core data structures and
//! invariants: triple-store index coherence, SPARQL-vs-naive-scan agreement,
//! Turtle round-trips, LCS metric properties, tokenizer and lemmatizer
//! stability, and similarity-metric bounds.

use proptest::prelude::*;
use relpat::nlp::{lemmatize, tokenize, PosTag};
use relpat::qa::{lcs_len, lcs_score};
use relpat::rdf::{load_turtle, to_turtle, Graph, Literal, Term, Triple};
use relpat::sparql::query;
use relpat::wordnet::{embedded, WnPos};

// ---------------------------------------------------------------- generators

fn arb_iri() -> impl Strategy<Value = Term> {
    "[a-z]{1,6}".prop_map(|s| Term::iri(format!("http://example.org/{s}")))
}

fn arb_literal() -> impl Strategy<Value = Term> {
    prop_oneof![
        "[a-zA-Z0-9 ]{0,12}".prop_map(Term::literal),
        any::<i32>().prop_map(|n| Term::Literal(Literal::integer(n as i64))),
        (1900i32..2100, 1u32..13, 1u32..29)
            .prop_map(|(y, m, d)| Term::Literal(Literal::date(y, m, d))),
    ]
}

fn arb_triple() -> impl Strategy<Value = Triple> {
    (arb_iri(), arb_iri(), prop_oneof![arb_iri(), arb_literal()])
        .prop_map(|(s, p, o)| Triple::new(s, p, o))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------------------------------------------------------- rdf store

    #[test]
    fn store_membership_matches_inserted_set(triples in prop::collection::vec(arb_triple(), 0..40)) {
        let mut g = Graph::new();
        for t in &triples {
            g.insert(t);
        }
        // Set semantics: length equals the number of distinct triples.
        let mut distinct = triples.clone();
        distinct.sort();
        distinct.dedup();
        prop_assert_eq!(g.len(), distinct.len());
        for t in &distinct {
            prop_assert!(g.contains(t));
        }
        // Full iteration returns exactly the distinct set.
        let mut iterated: Vec<Triple> = g.iter().collect();
        iterated.sort();
        prop_assert_eq!(iterated, distinct);
    }

    #[test]
    fn store_pattern_scans_agree_with_naive_filter(
        triples in prop::collection::vec(arb_triple(), 1..30),
        probe in 0usize..30,
    ) {
        let mut g = Graph::new();
        for t in &triples {
            g.insert(t);
        }
        let probe = &triples[probe % triples.len()];
        let all: Vec<Triple> = g.iter().collect();

        // Every one of the 8 bound/unbound shapes must equal a naive filter.
        for mask in 0..8u8 {
            let s = (mask & 1 != 0).then_some(&probe.subject);
            let p = (mask & 2 != 0).then_some(&probe.predicate);
            let o = (mask & 4 != 0).then_some(&probe.object);
            let mut expected: Vec<Triple> = all
                .iter()
                .filter(|t| {
                    s.is_none_or(|x| &t.subject == x)
                        && p.is_none_or(|x| &t.predicate == x)
                        && o.is_none_or(|x| &t.object == x)
                })
                .cloned()
                .collect();
            expected.sort();
            let mut got = g.triples_matching(s, p, o);
            got.sort();
            prop_assert_eq!(got, expected, "mask {}", mask);
        }
    }

    #[test]
    fn store_remove_is_inverse_of_insert(triples in prop::collection::vec(arb_triple(), 1..25)) {
        let mut g = Graph::new();
        for t in &triples {
            g.insert(t);
        }
        for t in &triples {
            g.remove(t);
        }
        prop_assert!(g.is_empty());
        prop_assert!(g.triples_matching(None, None, None).is_empty());
    }

    // ------------------------------------------------------------------ sparql

    #[test]
    fn sparql_spo_query_agrees_with_store(triples in prop::collection::vec(arb_triple(), 1..25)) {
        let mut g = Graph::new();
        for t in &triples {
            g.insert(t);
        }
        let sols = query(&g, "SELECT ?s ?p ?o { ?s ?p ?o }").unwrap().expect_solutions();
        prop_assert_eq!(sols.len(), g.len());
        // A bound-subject query returns exactly that subject's triples.
        let subject = &triples[0].subject;
        let q = format!("SELECT ?p ?o {{ <{}> ?p ?o }}", subject.as_iri().unwrap().as_str());
        let bound = query(&g, &q).unwrap().expect_solutions();
        prop_assert_eq!(bound.len(), g.triples_matching(Some(subject), None, None).len());
    }

    #[test]
    fn sparql_limit_caps_results(
        triples in prop::collection::vec(arb_triple(), 1..25),
        limit in 0usize..10,
    ) {
        let mut g = Graph::new();
        for t in &triples {
            g.insert(t);
        }
        let sols = query(&g, &format!("SELECT ?s {{ ?s ?p ?o }} LIMIT {limit}"))
            .unwrap()
            .expect_solutions();
        prop_assert!(sols.len() <= limit);
        prop_assert_eq!(sols.len(), limit.min(g.len()));
    }

    // ------------------------------------------------------------------ turtle

    #[test]
    fn turtle_round_trip_preserves_graph(triples in prop::collection::vec(arb_triple(), 0..25)) {
        let mut g = Graph::new();
        for t in &triples {
            g.insert(t);
        }
        let ttl = to_turtle(&g);
        let mut g2 = Graph::new();
        load_turtle(&mut g2, &ttl).unwrap();
        prop_assert_eq!(g.len(), g2.len());
        for t in g.iter() {
            prop_assert!(g2.contains(&t), "lost {}", t);
        }
    }

    // ------------------------------------------------------------- similarity

    #[test]
    fn lcs_is_symmetric_and_bounded(a in "[a-zA-Z]{0,14}", b in "[a-zA-Z]{0,14}") {
        let ab = lcs_score(&a, &b);
        let ba = lcs_score(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!(lcs_len(&a, &b) <= a.len().min(b.len()));
    }

    #[test]
    fn lcs_identity_scores_one(a in "[a-z]{1,14}") {
        prop_assert_eq!(lcs_score(&a, &a), 1.0);
        prop_assert_eq!(lcs_len(&a, &a), a.len());
    }

    #[test]
    fn lcs_monotone_under_concatenation(a in "[a-z]{1,8}", b in "[a-z]{1,8}") {
        // A common subsequence can only grow when one side gains characters.
        let base = lcs_len(&a, &b);
        let extended = lcs_len(&a, &format!("{b}{a}"));
        prop_assert!(extended >= base);
        prop_assert!(extended >= a.len()); // a is a subsequence of b+a
    }

    // ---------------------------------------------------------------- parser

    /// The SPARQL parser must be total: random input either parses or
    /// returns an error, never panics — and parsed queries re-render and
    /// re-parse to the same AST (serializer round trip).
    #[test]
    fn sparql_parser_total_and_round_trips(s in "[A-Za-z0-9?{}<>.:/ \"=]{0,80}") {
        if let Ok(q) = relpat::sparql::parse_query(&s) {
            let rendered = q.to_string();
            let reparsed = relpat::sparql::parse_query(&rendered)
                .unwrap_or_else(|e| panic!("reparse of {rendered:?} failed: {e}"));
            prop_assert_eq!(q, reparsed);
        }
    }

    /// Turtle parser totality on arbitrary input.
    #[test]
    fn turtle_parser_total(s in "[A-Za-z0-9@<>.;, \"]{0,80}") {
        let _ = relpat::rdf::parse_turtle(&s); // must not panic
    }

    // ----------------------------------------------------------------- nlp

    #[test]
    fn tokenizer_never_loses_alphanumerics(s in "[a-zA-Z0-9 ,.?!']{0,60}") {
        let tokens = tokenize(&s);
        let kept: String = tokens.join("").chars().filter(|c| c.is_alphanumeric()).collect();
        let original: String = s.chars().filter(|c| c.is_alphanumeric()).collect();
        prop_assert_eq!(kept, original);
    }

    #[test]
    fn lemmatizer_is_idempotent_for_nouns(w in "[a-z]{2,12}") {
        let once = lemmatize(&w, PosTag::Nn);
        let twice = lemmatize(&once, PosTag::Nn);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn lemmas_are_lowercase_and_nonempty(w in "[a-zA-Z]{1,12}") {
        for pos in [PosTag::Nn, PosTag::Nns, PosTag::Vb, PosTag::Vbd, PosTag::Jj, PosTag::In] {
            let lemma = lemmatize(&w, pos);
            prop_assert!(!lemma.is_empty());
            prop_assert_eq!(lemma.clone(), lemma.to_lowercase());
        }
    }

    // --------------------------------------------------------------- wordnet

    #[test]
    fn wordnet_metrics_bounded_and_reflexive(idx in 0usize..8) {
        let words = ["writer", "author", "city", "person", "height", "book", "film", "place"];
        let w = words[idx];
        let wn = embedded();
        prop_assert_eq!(wn.lin(w, w, WnPos::Noun), Some(1.0));
        prop_assert_eq!(wn.wup(w, w, WnPos::Noun), Some(1.0));
        for other in words {
            if let (Some(lin), Some(wup)) =
                (wn.lin(w, other, WnPos::Noun), wn.wup(w, other, WnPos::Noun))
            {
                prop_assert!((0.0..=1.0).contains(&lin));
                prop_assert!((0.0..=1.0).contains(&wup));
                // Symmetry.
                prop_assert_eq!(wn.lin(other, w, WnPos::Noun), Some(lin));
                prop_assert_eq!(wn.wup(other, w, WnPos::Noun), Some(wup));
            }
        }
    }
}
