//! Snapshot test of one fixed QALD-style question's observability trace:
//! the per-question [`relpat::obs::QuestionTrace`] must expose the full
//! pipeline story — stage names, query counts, pattern-store lookups — in
//! both its structured and JSON forms, and `Response::explain` must be
//! exactly the trace rendering (the two share one source of truth).

use relpat::kb::{generate, KbConfig};
use relpat::obs::Json;
use relpat::qa::{Pipeline, Stage};

#[test]
fn figure1_question_trace_snapshot() {
    // A dedicated pipeline (own pattern store): lookup deltas in the trace
    // must not absorb traffic from other tests in this process.
    let kb = generate(&KbConfig::tiny());
    let pipeline = Pipeline::new(&kb);
    let response = pipeline.answer("Which book is written by Orhan Pamuk?");
    assert_eq!(response.stage, Stage::Answered);

    let trace = &response.trace;
    assert_eq!(trace.question, "Which book is written by Orhan Pamuk?");
    assert_eq!(trace.stage, "Answered");

    // Every pipeline stage was timed, in order, with a nonzero clock.
    let names: Vec<&str> = trace.stages.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["extract", "map", "build", "answer"]);
    for stage in &trace.stages {
        assert!(stage.nanos > 0, "stage {} has zero duration", stage.name);
    }
    assert!(trace.total_nanos() >= trace.stages.iter().map(|s| s.nanos).sum::<u64>());

    // The query funnel is populated: built ≥ executed ≥ survived ≥ 1.
    assert!(trace.queries_built > 0, "no queries built");
    assert!(trace.queries_executed > 0, "no queries executed");
    assert!(trace.queries_survived >= 1, "winning query not counted");
    assert!(trace.queries_built >= trace.queries_survived);

    // The relational-pattern store was consulted during mapping.
    assert!(trace.pattern_lookups.total() > 0, "no pattern lookups recorded");

    // Triple extraction found the paper's Figure-1 relation with candidates.
    assert!(!trace.triples.is_empty());
    assert!(trace.triples.iter().any(|t| !t.candidates.is_empty()));

    // The answer block carries the winning SPARQL and resolved text.
    let answer = trace.answer.as_ref().expect("answered trace has answer block");
    assert!(answer.sparql.contains("SELECT") || answer.sparql.contains("ASK"));
    assert!(!answer.texts.is_empty());

    // JSON serialization carries the same structure.
    let json = Json::parse(&trace.to_json().to_string()).expect("trace JSON parses");
    assert_eq!(json.get("stage").and_then(Json::as_str), Some("Answered"));
    assert_eq!(
        json.get("queries_built").and_then(Json::as_u64),
        Some(trace.queries_built)
    );
    assert!(json.get("queries_executed").and_then(Json::as_u64).unwrap() > 0);
    let stages = json.get("stages").and_then(Json::as_array).expect("stages array");
    let stage_names: Vec<&str> =
        stages.iter().filter_map(|s| s.get("name").and_then(Json::as_str)).collect();
    assert_eq!(stage_names, ["extract", "map", "build", "answer"]);

    // explain() is exactly the trace rendering — they cannot drift.
    assert_eq!(response.explain(&kb), trace.render());
    let explanation = response.explain(&kb);
    for marker in ["§2.1", "§2.2", "§2.3", "Answer", "Timings"] {
        assert!(explanation.contains(marker), "missing {marker} in:\n{explanation}");
    }
}

#[test]
fn unanswered_question_trace_records_failure_stage() {
    let kb = generate(&KbConfig::tiny());
    let pipeline = Pipeline::new(&kb);
    let response = pipeline.answer("Is Frank Herbert still alive?");
    assert_ne!(response.stage, Stage::Answered);

    let trace = &response.trace;
    assert_eq!(trace.stage, format!("{:?}", response.stage));
    assert!(trace.answer.is_none());
    // The failure stage is visible in JSON and rendering alike.
    let json = trace.to_json();
    assert_eq!(json.get("stage").and_then(Json::as_str), Some(trace.stage.as_str()));
    assert!(trace.render().contains("No answer"));
}
