//! Cross-crate substrate integration: RDF ⇄ Turtle ⇄ SPARQL ⇄ KB ⇄ patterns.

use relpat::kb::{generate, normalize_label, KbConfig, Ontology};
use relpat::patterns::{mine, CorpusConfig};
use relpat::rdf::{load_turtle, parse_ntriples, to_ntriples, to_turtle, Graph, Term};
use relpat::sparql::{query, QueryResult};

#[test]
fn turtle_to_sparql_round_trip() {
    let doc = r#"
        res:Snow a dbont:Book ;
            dbont:author res:Orhan_Pamuk ;
            rdfs:label "Snow"@en ;
            dbont:numberOfPages 432 .
        res:Orhan_Pamuk a dbont:Writer ;
            rdfs:label "Orhan Pamuk"@en .
    "#;
    let mut g = Graph::new();
    assert_eq!(load_turtle(&mut g, doc).unwrap(), 6);

    let result = query(&g, "SELECT ?x { ?x dbont:author res:Orhan_Pamuk }").unwrap();
    let sols = result.into_solutions().unwrap();
    assert_eq!(sols.len(), 1);

    // Serialize → reparse → same answers.
    let ttl = to_turtle(&g);
    let mut g2 = Graph::new();
    load_turtle(&mut g2, &ttl).unwrap();
    let sols2 = query(&g2, "SELECT ?x { ?x dbont:author res:Orhan_Pamuk }")
        .unwrap()
        .into_solutions().unwrap();
    assert_eq!(sols.rows, sols2.rows);
}

#[test]
fn ntriples_preserves_generated_kb() {
    let kb = generate(&KbConfig::tiny());
    let nt = to_ntriples(&kb.graph);
    let triples = parse_ntriples(&nt).unwrap();
    assert_eq!(triples.len(), kb.len());
    let mut g2 = Graph::new();
    for t in &triples {
        g2.insert(t);
    }
    // The reloaded graph answers the paper query identically.
    let q = "SELECT ?x { ?x rdf:type dbont:Book . ?x dbont:author res:Orhan_Pamuk }";
    let a = kb.query(q).unwrap().into_solutions().unwrap();
    let b = query(&g2, q).unwrap().into_solutions().unwrap();
    assert_eq!(a.len(), b.len());
}

#[test]
fn generated_kb_satisfies_ontology_domains() {
    // Every object-property fact in the generated KB must respect the
    // declared domain/range up to taxonomy (the generator and the query
    // builder both rely on this).
    let kb = generate(&KbConfig::tiny());
    let onto = Ontology::dbpedia();
    for p in &onto.object_properties {
        let pred = Term::iri(relpat::rdf::vocab::dbont::iri(p.name));
        for t in kb.graph.triples_matching(None, Some(&pred), None) {
            let (Term::Iri(s), Term::Iri(o)) = (&t.subject, &t.object) else {
                continue;
            };
            assert!(
                kb.classes_of(s).iter().any(|c| onto.is_subclass_of(c, p.domain)),
                "{} violates domain of {}",
                s.as_str(),
                p.name
            );
            assert!(
                kb.classes_of(o).iter().any(|c| onto.is_subclass_of(c, p.range)),
                "{} violates range of {}",
                o.as_str(),
                p.name
            );
        }
    }
}

#[test]
fn mined_patterns_are_grounded_in_kb_facts() {
    // Distant supervision soundness: every mined phrase candidate must be a
    // property that actually occurs in the KB.
    let kb = generate(&KbConfig::tiny());
    let mined = mine(&kb, &CorpusConfig::default());
    let existing: Vec<&str> =
        kb.ontology.object_properties.iter().map(|p| p.name).collect();
    for (pattern, candidates) in mined.store.patterns() {
        for c in candidates {
            assert!(
                existing.contains(&c.property.as_str()),
                "pattern {pattern:?} maps to unknown property {}",
                c.property
            );
            assert!(c.freq > 0);
        }
    }
}

#[test]
fn label_index_and_normalization_agree() {
    let kb = generate(&KbConfig::tiny());
    for (label, iris) in kb.labels_iter() {
        assert!(!iris.is_empty());
        assert_eq!(label, normalize_label(label), "index key must be normalized");
        // Every indexed entity resolves back through the same key.
        assert_eq!(kb.entities_with_label(label), iris);
    }
}

#[test]
fn ask_and_select_agree_on_facts() {
    let kb = generate(&KbConfig::tiny());
    let sols = kb
        .query("SELECT ?x { ?x dbont:author res:Orhan_Pamuk }")
        .unwrap()
        .into_solutions().unwrap();
    for row in &sols.rows {
        let iri = row[0].as_ref().unwrap().as_iri().unwrap();
        let ask = kb
            .query(&format!("ASK {{ <{}> dbont:author res:Orhan_Pamuk }}", iri.as_str()))
            .unwrap();
        assert_eq!(ask, QueryResult::Boolean(true));
    }
}

#[test]
fn nlp_handles_every_generated_label() {
    // The tokenizer/tagger must at minimum round-trip every entity label
    // (mention detection depends on it).
    let kb = generate(&KbConfig::tiny());
    for (label, _) in kb.labels_iter() {
        let tokens = relpat::nlp::tokenize(label);
        assert!(!tokens.is_empty(), "label {label:?} tokenizes to nothing");
        let rejoined = tokens.join(" ");
        assert_eq!(
            normalize_label(&rejoined),
            normalize_label(label),
            "label {label:?} does not survive tokenization"
        );
    }
}
