//! End-to-end integration: the paper's running examples through the public
//! facade, knowledge base → mining → pipeline → answer.

use relpat::kb::{generate, KbConfig, KnowledgeBase};
use relpat::qa::{AnswerValue, Pipeline, Stage};
use std::sync::OnceLock;

fn kb() -> &'static KnowledgeBase {
    static KB: OnceLock<KnowledgeBase> = OnceLock::new();
    KB.get_or_init(|| generate(&KbConfig::tiny()))
}

fn pipeline() -> &'static Pipeline<'static> {
    static P: OnceLock<Pipeline<'static>> = OnceLock::new();
    P.get_or_init(|| Pipeline::new(kb()))
}

fn labels_of(r: &relpat::qa::Response) -> Vec<String> {
    match &r.answer {
        Some(a) => match &a.value {
            AnswerValue::Terms(ts) => ts
                .iter()
                .map(|t| {
                    t.as_iri()
                        .and_then(|i| kb().label_of(i))
                        .map(str::to_string)
                        .unwrap_or_else(|| {
                            t.as_literal().map(|l| l.lexical_form().to_string()).unwrap_or_default()
                        })
                })
                .collect(),
            AnswerValue::Boolean(b) => vec![b.to_string()],
        },
        None => Vec::new(),
    }
}

#[test]
fn paper_section2_walkthrough() {
    // The complete §2 walkthrough: Figure 1 sentence in, Pamuk's books out,
    // via an author-property query (the paper's Query2 modulo writer/author
    // domain pruning).
    let r = pipeline().answer("Which book is written by Orhan Pamuk?");
    assert_eq!(r.stage, Stage::Answered);
    let mut labels = labels_of(&r);
    labels.sort();
    assert_eq!(labels, vec!["My Name is Red", "Snow", "The Museum of Innocence"]);
    let ans = r.answer.unwrap();
    assert!(ans.sparql.contains("author"));
    assert!(ans.sparql.contains("Book"));
}

#[test]
fn paper_section22_examples() {
    // §2.2.2 examples: both phrasings of the Michael Jordan height question
    // must resolve to the basketball player and return 1.98.
    for q in ["What is the height of Michael Jordan?", "How tall is Michael Jordan?"] {
        let r = pipeline().answer(q);
        assert_eq!(r.stage, Stage::Answered, "{q}");
        assert_eq!(labels_of(&r), vec!["1.98"], "{q}");
    }
}

#[test]
fn paper_section223_example() {
    // §2.2.3: "Where did Abraham Lincoln die?" — deathPlace outranks the
    // birthPlace/residence noise by pattern frequency.
    let r = pipeline().answer("Where did Abraham Lincoln die?");
    assert_eq!(labels_of(&r), vec!["Washington"]);
    assert!(r.answer.unwrap().sparql.contains("deathPlace"));
}

#[test]
fn paper_birthplace_paraphrases() {
    // §2.2.3's motivation: different phrasings map to the same property.
    for q in ["Where was Michael Jackson born?", "In which city was Michael Jackson born?"] {
        let r = pipeline().answer(q);
        assert_eq!(r.stage, Stage::Answered, "{q}");
        assert_eq!(labels_of(&r), vec!["Gary"], "{q}");
    }
}

#[test]
fn paper_discussion_failure_is_reproduced() {
    // §5: "Is Frank Herbert still alive?" extracts [Frank Herbert][is][alive]
    // but cannot be mapped — exactly the failure mode the paper reports.
    let r = pipeline().answer("Is Frank Herbert still alive?");
    assert_eq!(r.stage, Stage::MappingFailed);
    let analysis = r.analysis.expect("extraction succeeds per the paper");
    assert!(analysis.to_bucket_string().contains("alive"));
}

#[test]
fn wordnet_pair_rescues_writer_questions() {
    // dbont:writer (songs) cannot answer book questions; the WordNet
    // writer↔author pair must rescue the query.
    let r = pipeline().answer("Who wrote Snow?");
    assert_eq!(r.stage, Stage::Answered);
    assert_eq!(labels_of(&r), vec!["Orhan Pamuk"]);
}

#[test]
fn expected_type_checking_filters_dates_from_places() {
    let r = pipeline().answer("When did Frank Herbert die?");
    assert_eq!(r.stage, Stage::Answered);
    assert_eq!(labels_of(&r), vec!["1986-02-11"]);
    // The winning query must be the data property, not deathPlace.
    assert!(r.answer.unwrap().sparql.contains("deathDate"));
}

#[test]
fn imperative_and_fronted_object_forms() {
    let give = pipeline().answer("Give me all films directed by James Cameron.");
    let fronted = pipeline().answer("Which films did James Cameron direct?");
    let mut a = labels_of(&give);
    let mut b = labels_of(&fronted);
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert_eq!(a, vec!["Avatar", "Titanic"]);
}

#[test]
fn polar_question_true_and_false() {
    let t = pipeline().answer("Is Ankara the capital of Turkey?");
    assert_eq!(labels_of(&t), vec!["true"]);
    let f = pipeline().answer("Was Abraham Lincoln married to Michelle Obama?");
    assert_eq!(labels_of(&f), vec!["false"]);
}

#[test]
fn garbage_input_degrades_gracefully() {
    for q in ["", "???", "blue ideas sleep furiously colorless", "42"] {
        let r = pipeline().answer(q);
        assert!(!r.is_answered(), "{q:?} should not be answered");
    }
}

#[test]
fn facade_reexports_are_wired() {
    // Spot-check that every facade module is reachable and consistent.
    let g = relpat::nlp::parse_sentence("Which book is written by Orhan Pamuk?");
    assert!(g.root.is_some());
    let wn = relpat::wordnet::embedded();
    assert_eq!(wn.lin("writer", "author", relpat::wordnet::WnPos::Noun), Some(1.0));
    assert!(relpat::qa::lcs_score("write", "writer") > 0.8);
    let triples =
        relpat::rdf::parse_turtle("res:A dbont:author res:B .").unwrap();
    assert_eq!(triples.len(), 1);
}
