//! Determinism guarantees: every number the repository reports must be
//! reproducible bit-for-bit from the seeds. Two independent builds of the
//! whole stack must agree on the benchmark outcome.

use relpat::eval::run_benchmark;
use relpat::kb::{generate, qald_questions, KbConfig};
use relpat::patterns::{mine, CorpusConfig};
use relpat::qa::Pipeline;

#[test]
fn full_stack_is_deterministic() {
    let run = || {
        let kb = generate(&KbConfig::tiny());
        let pipeline = Pipeline::new(&kb);
        let questions = qald_questions(&kb);
        let report = run_benchmark(&pipeline, &questions);
        (
            kb.len(),
            report.counts,
            report
                .results
                .iter()
                .map(|r| (r.id, r.answered, r.correct, r.answer.clone()))
                .collect::<Vec<_>>(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "KB size must be seed-stable");
    assert_eq!(a.1, b.1, "Table-2 counts must be seed-stable");
    assert_eq!(a.2, b.2, "per-question outcomes must be seed-stable");
}

#[test]
fn mining_is_deterministic() {
    let kb = generate(&KbConfig::tiny());
    let a = mine(&kb, &CorpusConfig::default());
    let b = mine(&kb, &CorpusConfig::default());
    assert_eq!(a.sentences, b.sentences);
    assert_eq!(a.occurrences, b.occurrences);
    assert_eq!(a.store.pattern_count(), b.store.pattern_count());
    // Candidate lists for key words must agree element-wise.
    for word in ["die", "bear", "write", "capital"] {
        assert_eq!(
            a.store.candidates_for_word(word),
            b.store.candidates_for_word(word),
            "{word}"
        );
    }
}

#[test]
fn seeds_control_the_world() {
    let a = generate(&KbConfig::tiny());
    let b = generate(&KbConfig { seed: 7, ..KbConfig::tiny() });
    // Different seed → different bulk content (famous entities excepted).
    assert_ne!(a.len(), b.len());
    // But the paper-example facts are seed-independent.
    for kb in [&a, &b] {
        let sols = kb
            .query("SELECT ?x { ?x dbont:author res:Orhan_Pamuk }")
            .unwrap()
            .into_solutions().unwrap();
        assert_eq!(sols.len(), 3);
    }
}

#[test]
fn answer_is_stable_across_repeated_calls() {
    let kb = generate(&KbConfig::tiny());
    let pipeline = Pipeline::new(&kb);
    let first = pipeline.answer("Where did Abraham Lincoln die?");
    for _ in 0..3 {
        let again = pipeline.answer("Where did Abraham Lincoln die?");
        assert_eq!(first.stage, again.stage);
        assert_eq!(
            first.answer.as_ref().map(|a| &a.sparql),
            again.answer.as_ref().map(|a| &a.sparql)
        );
    }
}
